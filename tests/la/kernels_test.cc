// Kernel-layer tests, in three groups:
//
//  1. Seed bit-identity: the scalar table must reproduce the exact loops
//     the kernel layer replaced. Frozen copies of those seed loops live in
//     this file; the scalar kernels must match them bit-for-bit (memcmp).
//  2. Cross-tier parity: every compiled-in SIMD tier must agree with the
//     scalar reference — bit-exact for elementwise kernels (the documented
//     contract), within a reduction tolerance for kernels that reassociate,
//     and within a relative-error bound for the polynomial transcendentals.
//  3. Dispatch: level selection, SEMTAG_SIMD handling, KernelTableFor.
//
// Tolerance policy (mirrors DESIGN.md "Kernel layer and dispatch"):
//  - reassociated float reductions: |simd - scalar| <= 1e-5 * sum|terms|
//  - vexp/vtanh/vsigmoid/vgelu: relative error <= 1e-5 vs the libm scalar
//    reference (the Cephes polynomials are good to a few ULP; the bound
//    here is deliberately loose enough to be hardware-independent).

#include "la/kernels.h"

#include <cmath>
#include <cstring>
#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "la/sparse.h"

namespace semtag::la {
namespace {

std::vector<float> RandomVec(Rng* rng, size_t n, double lo = -2.0,
                             double hi = 2.0) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng->UniformDouble(lo, hi));
  return v;
}

bool BitIdentical(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

const size_t kSizes[] = {1, 2, 3, 7, 8, 15, 16, 17, 31, 63, 64, 100, 255,
                         256, 1000};

std::vector<SimdLevel> AvailableSimdTiers() {
  std::vector<SimdLevel> tiers;
  for (SimdLevel level : {SimdLevel::kSse2, SimdLevel::kAvx2}) {
    if (SimdLevelAvailable(level)) tiers.push_back(level);
  }
  return tiers;
}

// ---------------------------------------------------------------------------
// 1. Scalar table == seed loops, bit for bit.
// ---------------------------------------------------------------------------

// Frozen seed reference implementations. These are copies of the exact
// loops that lived in matrix.cc / ops.cc / optimizer.cc / sparse.cc before
// the kernel layer existed. Do not update them if the kernels change —
// they pin the scalar tier to the seed's numerics.
namespace seed {

float Dot(const float* a, const float* b, size_t n) {
  float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 += a[i] * b[i];
    acc1 += a[i + 1] * b[i + 1];
    acc2 += a[i + 2] * b[i + 2];
    acc3 += a[i + 3] * b[i + 3];
  }
  for (; i < n; ++i) acc0 += a[i] * b[i];
  return (acc0 + acc1) + (acc2 + acc3);
}

void GemmUpdate(float* out, const float* b0, const float* b1,
                const float* b2, const float* b3, float a0, float a1,
                float a2, float a3, size_t n) {
  for (size_t j = 0; j < n; ++j) {
    out[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
  }
}

void SoftmaxRow(float* row, size_t n) {
  float mx = row[0];
  for (size_t c = 1; c < n; ++c) mx = std::max(mx, row[c]);
  float sum = 0.0f;
  for (size_t c = 0; c < n; ++c) {
    row[c] = std::exp(row[c] - mx);
    sum += row[c];
  }
  const float inv = 1.0f / sum;
  for (size_t c = 0; c < n; ++c) row[c] *= inv;
}

float LayerNormRow(float* normalized, const float* row, size_t n,
                   float eps) {
  float mean = 0.0f;
  for (size_t c = 0; c < n; ++c) mean += row[c];
  mean /= static_cast<float>(n);
  float var = 0.0f;
  for (size_t c = 0; c < n; ++c) {
    const float dxc = row[c] - mean;
    var += dxc * dxc;
  }
  var /= static_cast<float>(n);
  const float istd = 1.0f / std::sqrt(var + eps);
  for (size_t c = 0; c < n; ++c) normalized[c] = (row[c] - mean) * istd;
  return istd;
}

void AdamUpdate(float* w, const float* g, float* m, float* v, size_t n,
                float lr, float beta1, float beta2, float eps, float bc1,
                float bc2) {
  for (size_t j = 0; j < n; ++j) {
    const float gj = g[j];
    m[j] = beta1 * m[j] + (1.0f - beta1) * gj;
    v[j] = beta2 * v[j] + (1.0f - beta2) * gj * gj;
    const float mhat = m[j] / bc1;
    const float vhat = v[j] / bc2;
    w[j] -= lr * mhat / (std::sqrt(vhat) + eps);
  }
}

}  // namespace seed

TEST(KernelsScalarSeedTest, DotMatchesSeedBitwise) {
  const KernelTable& kt = KernelTableFor(SimdLevel::kScalar);
  Rng rng(11);
  for (size_t n : kSizes) {
    const auto a = RandomVec(&rng, n);
    const auto b = RandomVec(&rng, n);
    const float got = kt.dot(a.data(), b.data(), n);
    const float want = seed::Dot(a.data(), b.data(), n);
    ASSERT_EQ(std::memcmp(&got, &want, sizeof(float)), 0) << "n=" << n;
  }
}

TEST(KernelsScalarSeedTest, GemmUpdate4MatchesSeedBitwise) {
  const KernelTable& kt = KernelTableFor(SimdLevel::kScalar);
  Rng rng(12);
  for (size_t n : kSizes) {
    const auto b0 = RandomVec(&rng, n), b1 = RandomVec(&rng, n);
    const auto b2 = RandomVec(&rng, n), b3 = RandomVec(&rng, n);
    const auto base = RandomVec(&rng, n);
    const float a0 = 0.7f, a1 = -1.3f, a2 = 0.02f, a3 = 2.5f;
    auto got = base;
    kt.gemm_update4(got.data(), b0.data(), b1.data(), b2.data(), b3.data(),
                    a0, a1, a2, a3, n);
    auto want = base;
    seed::GemmUpdate(want.data(), b0.data(), b1.data(), b2.data(), b3.data(),
                     a0, a1, a2, a3, n);
    ASSERT_TRUE(BitIdentical(got, want)) << "n=" << n;
  }
}

TEST(KernelsScalarSeedTest, GemmUpdate4x2MatchesTwoSingleRowUpdates) {
  const KernelTable& kt = KernelTableFor(SimdLevel::kScalar);
  Rng rng(13);
  for (size_t n : kSizes) {
    const auto b0 = RandomVec(&rng, n), b1 = RandomVec(&rng, n);
    const auto b2 = RandomVec(&rng, n), b3 = RandomVec(&rng, n);
    const float a0[4] = {0.5f, -0.25f, 1.5f, -2.0f};
    const float a1[4] = {1.0f, 0.125f, -0.75f, 3.0f};
    auto got0 = RandomVec(&rng, n);
    auto got1 = RandomVec(&rng, n);
    auto want0 = got0;
    auto want1 = got1;
    kt.gemm_update4x2(got0.data(), got1.data(), b0.data(), b1.data(),
                      b2.data(), b3.data(), a0, a1, n);
    seed::GemmUpdate(want0.data(), b0.data(), b1.data(), b2.data(), b3.data(),
                     a0[0], a0[1], a0[2], a0[3], n);
    seed::GemmUpdate(want1.data(), b0.data(), b1.data(), b2.data(), b3.data(),
                     a1[0], a1[1], a1[2], a1[3], n);
    ASSERT_TRUE(BitIdentical(got0, want0)) << "n=" << n;
    ASSERT_TRUE(BitIdentical(got1, want1)) << "n=" << n;
  }
}

TEST(KernelsScalarSeedTest, SoftmaxRowMatchesSeedBitwise) {
  const KernelTable& kt = KernelTableFor(SimdLevel::kScalar);
  Rng rng(14);
  for (size_t n : kSizes) {
    const auto base = RandomVec(&rng, n, -8.0, 8.0);
    auto got = base;
    kt.softmax_row(got.data(), n);
    auto want = base;
    seed::SoftmaxRow(want.data(), n);
    ASSERT_TRUE(BitIdentical(got, want)) << "n=" << n;
  }
}

TEST(KernelsScalarSeedTest, LayerNormRowMatchesSeedBitwise) {
  const KernelTable& kt = KernelTableFor(SimdLevel::kScalar);
  Rng rng(15);
  for (size_t n : kSizes) {
    const auto row = RandomVec(&rng, n);
    std::vector<float> got(n), want(n);
    const float istd_got = kt.layernorm_row(got.data(), row.data(), n, 1e-5f);
    const float istd_want = seed::LayerNormRow(want.data(), row.data(), n,
                                               1e-5f);
    ASSERT_EQ(std::memcmp(&istd_got, &istd_want, sizeof(float)), 0);
    ASSERT_TRUE(BitIdentical(got, want)) << "n=" << n;
  }
}

TEST(KernelsScalarSeedTest, AdamUpdateMatchesSeedBitwise) {
  const KernelTable& kt = KernelTableFor(SimdLevel::kScalar);
  Rng rng(16);
  for (size_t n : kSizes) {
    const auto g = RandomVec(&rng, n);
    auto w_got = RandomVec(&rng, n);
    auto m_got = RandomVec(&rng, n, -0.1, 0.1);
    auto v_got = RandomVec(&rng, n, 0.0, 0.1);
    auto w_want = w_got, m_want = m_got, v_want = v_got;
    kt.adam_update(w_got.data(), g.data(), m_got.data(), v_got.data(), n,
                   1e-3f, 0.9f, 0.999f, 1e-8f, 0.1f, 0.001f);
    seed::AdamUpdate(w_want.data(), g.data(), m_want.data(), v_want.data(),
                     n, 1e-3f, 0.9f, 0.999f, 1e-8f, 0.1f, 0.001f);
    ASSERT_TRUE(BitIdentical(w_got, w_want)) << "n=" << n;
    ASSERT_TRUE(BitIdentical(m_got, m_want)) << "n=" << n;
    ASSERT_TRUE(BitIdentical(v_got, v_want)) << "n=" << n;
  }
}

// ---------------------------------------------------------------------------
// 2. Cross-tier parity.
// ---------------------------------------------------------------------------

class KernelsTierParityTest : public ::testing::TestWithParam<SimdLevel> {
 protected:
  const KernelTable& Tier() const { return KernelTableFor(GetParam()); }
  const KernelTable& Ref() const {
    return KernelTableFor(SimdLevel::kScalar);
  }
};

/// |got - want| <= 1e-5 * magnitude (magnitude = sum of |terms|, the scale
/// at which float reassociation error accrues).
void ExpectWithinBudget(float got, float want, double magnitude,
                        const char* what, size_t n) {
  EXPECT_LE(std::abs(static_cast<double>(got) - want),
            1e-5 * magnitude + 1e-7)
      << what << " n=" << n;
}

TEST_P(KernelsTierParityTest, ElementwiseKernelsAreBitExact) {
  const KernelTable& kt = Tier();
  Rng rng(21);
  for (size_t n : kSizes) {
    const auto x = RandomVec(&rng, n);
    const auto base = RandomVec(&rng, n);

    auto got = base, want = base;
    kt.scale(got.data(), 1.7f, n);
    Ref().scale(want.data(), 1.7f, n);
    ASSERT_TRUE(BitIdentical(got, want)) << "scale n=" << n;

    got = base, want = base;
    kt.vadd(got.data(), x.data(), n);
    Ref().vadd(want.data(), x.data(), n);
    ASSERT_TRUE(BitIdentical(got, want)) << "vadd n=" << n;

    got = base, want = base;
    kt.vsub(got.data(), x.data(), n);
    Ref().vsub(want.data(), x.data(), n);
    ASSERT_TRUE(BitIdentical(got, want)) << "vsub n=" << n;

    got = base, want = base;
    kt.hadamard(got.data(), x.data(), n);
    Ref().hadamard(want.data(), x.data(), n);
    ASSERT_TRUE(BitIdentical(got, want)) << "hadamard n=" << n;

    got = base, want = base;
    kt.axpy(got.data(), x.data(), -0.3f, n);
    Ref().axpy(want.data(), x.data(), -0.3f, n);
    ASSERT_TRUE(BitIdentical(got, want)) << "axpy n=" << n;

    got = base, want = base;
    kt.vfill(got.data(), 0.25f, n);
    Ref().vfill(want.data(), 0.25f, n);
    ASSERT_TRUE(BitIdentical(got, want)) << "vfill n=" << n;

    got = base, want = base;
    kt.vrelu(got.data(), n);
    Ref().vrelu(want.data(), n);
    ASSERT_TRUE(BitIdentical(got, want)) << "vrelu n=" << n;
  }
}

TEST_P(KernelsTierParityTest, MinMaxAreExact) {
  const KernelTable& kt = Tier();
  Rng rng(22);
  for (size_t n : kSizes) {
    const auto x = RandomVec(&rng, n);
    EXPECT_EQ(kt.vmax(x.data(), n), Ref().vmax(x.data(), n)) << "n=" << n;
    EXPECT_EQ(kt.vmin(x.data(), n), Ref().vmin(x.data(), n)) << "n=" << n;
  }
}

TEST_P(KernelsTierParityTest, AdamUpdateIsBitExact) {
  const KernelTable& kt = Tier();
  Rng rng(23);
  for (size_t n : kSizes) {
    const auto g = RandomVec(&rng, n);
    auto w_got = RandomVec(&rng, n);
    auto m_got = RandomVec(&rng, n, -0.1, 0.1);
    auto v_got = RandomVec(&rng, n, 0.0, 0.1);
    auto w_want = w_got, m_want = m_got, v_want = v_got;
    kt.adam_update(w_got.data(), g.data(), m_got.data(), v_got.data(), n,
                   1e-3f, 0.9f, 0.999f, 1e-8f, 0.1f, 0.001f);
    Ref().adam_update(w_want.data(), g.data(), m_want.data(), v_want.data(),
                      n, 1e-3f, 0.9f, 0.999f, 1e-8f, 0.1f, 0.001f);
    ASSERT_TRUE(BitIdentical(w_got, w_want)) << "n=" << n;
    ASSERT_TRUE(BitIdentical(m_got, m_want)) << "n=" << n;
    ASSERT_TRUE(BitIdentical(v_got, v_want)) << "n=" << n;
  }
}

TEST_P(KernelsTierParityTest, DotReductionsWithinTolerance) {
  const KernelTable& kt = Tier();
  Rng rng(24);
  for (size_t n : kSizes) {
    const auto a = RandomVec(&rng, n);
    const auto b = RandomVec(&rng, n);
    double magnitude = 0.0;
    for (size_t i = 0; i < n; ++i) {
      magnitude += std::abs(static_cast<double>(a[i]) * b[i]);
    }
    ExpectWithinBudget(kt.dot(a.data(), b.data(), n),
                       Ref().dot(a.data(), b.data(), n), magnitude, "dot", n);

    const auto b1 = RandomVec(&rng, n), b2 = RandomVec(&rng, n),
               b3 = RandomVec(&rng, n);
    float got4[4], want4[4];
    kt.dot4(a.data(), b.data(), b1.data(), b2.data(), b3.data(), n, got4);
    Ref().dot4(a.data(), b.data(), b1.data(), b2.data(), b3.data(), n,
               want4);
    for (int r = 0; r < 4; ++r) {
      ExpectWithinBudget(got4[r], want4[r], magnitude, "dot4", n);
    }
  }
}

TEST_P(KernelsTierParityTest, GemmUpdatesWithinTolerance) {
  const KernelTable& kt = Tier();
  Rng rng(25);
  for (size_t n : kSizes) {
    const auto b0 = RandomVec(&rng, n), b1 = RandomVec(&rng, n);
    const auto b2 = RandomVec(&rng, n), b3 = RandomVec(&rng, n);
    const auto base = RandomVec(&rng, n);
    const float a0[4] = {0.7f, -1.3f, 0.02f, 2.5f};
    const float a1[4] = {-0.4f, 0.9f, 1.1f, -0.6f};

    auto got = base, want = base;
    kt.gemm_update4(got.data(), b0.data(), b1.data(), b2.data(), b3.data(),
                    a0[0], a0[1], a0[2], a0[3], n);
    Ref().gemm_update4(want.data(), b0.data(), b1.data(), b2.data(),
                       b3.data(), a0[0], a0[1], a0[2], a0[3], n);
    for (size_t j = 0; j < n; ++j) {
      ExpectWithinBudget(got[j], want[j], 8.0, "gemm_update4", n);
    }

    auto got0 = base, got1 = base, want0 = base, want1 = base;
    kt.gemm_update4x2(got0.data(), got1.data(), b0.data(), b1.data(),
                      b2.data(), b3.data(), a0, a1, n);
    Ref().gemm_update4x2(want0.data(), want1.data(), b0.data(), b1.data(),
                         b2.data(), b3.data(), a0, a1, n);
    for (size_t j = 0; j < n; ++j) {
      ExpectWithinBudget(got0[j], want0[j], 8.0, "gemm_update4x2.r0", n);
      ExpectWithinBudget(got1[j], want1[j], 8.0, "gemm_update4x2.r1", n);
    }
  }
}

TEST_P(KernelsTierParityTest, SumReductionsWithinTolerance) {
  const KernelTable& kt = Tier();
  Rng rng(26);
  for (size_t n : kSizes) {
    const auto x = RandomVec(&rng, n);
    double mag = 0.0, mag2 = 0.0;
    for (float v : x) {
      mag += std::abs(static_cast<double>(v));
      mag2 += static_cast<double>(v) * v;
    }
    EXPECT_NEAR(kt.sum(x.data(), n), Ref().sum(x.data(), n), 1e-9 * mag)
        << "sum n=" << n;
    EXPECT_NEAR(kt.sumsq(x.data(), n), Ref().sumsq(x.data(), n), 1e-9 * mag2)
        << "sumsq n=" << n;
  }
}

TEST_P(KernelsTierParityTest, TranscendentalsWithinRelativeTolerance) {
  const KernelTable& kt = Tier();
  Rng rng(27);
  // Include the exp clamp boundaries and tanh branch point.
  for (size_t n : kSizes) {
    auto x = RandomVec(&rng, n, -10.0, 10.0);
    if (n >= 8) {
      x[0] = 0.0f;
      x[1] = -0.624f;
      x[2] = 0.626f;
      x[3] = 87.0f;   // near (but inside) the exp clamp range
      x[4] = -90.0f;  // below it: scalar underflows to a denormal,
                      // vector exp flushes to exact 0 — both ~0 in tol
      x[5] = 1e-8f;
      x[6] = -20.0f;
      x[7] = 20.0f;
    }
    // gelu gets a larger absolute floor: where tanh saturates, the
    // formula 0.5x(1+tanh(..)) amplifies tanh's few-ULP absolute error
    // into large *relative* error on a near-zero output. Absolute error
    // stays below 0.5|x| * tanh_abs_err ~ 2e-6 for |x| <= 10.
    for (auto [name, simd_fn, ref_fn, abs_tol] :
         {std::tuple{"vexp", kt.vexp, Ref().vexp, 1e-7},
          std::tuple{"vtanh", kt.vtanh, Ref().vtanh, 1e-7},
          std::tuple{"vsigmoid", kt.vsigmoid, Ref().vsigmoid, 1e-7},
          std::tuple{"vgelu", kt.vgelu, Ref().vgelu, 2e-6}}) {
      auto got = x, want = x;
      simd_fn(got.data(), n);
      ref_fn(want.data(), n);
      for (size_t i = 0; i < n; ++i) {
        const double w = want[i];
        EXPECT_NEAR(got[i], w, 1e-5 * std::abs(w) + abs_tol)
            << name << " n=" << n << " x=" << x[i];
      }
    }
  }
}

TEST_P(KernelsTierParityTest, FusedRowsWithinTolerance) {
  const KernelTable& kt = Tier();
  Rng rng(28);
  for (size_t n : kSizes) {
    const auto base = RandomVec(&rng, n, -8.0, 8.0);
    auto got = base, want = base;
    kt.softmax_row(got.data(), n);
    Ref().softmax_row(want.data(), n);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(got[i], want[i], 1e-5) << "softmax n=" << n;
    }

    std::vector<float> ngot(n), nwant(n);
    const float istd_got =
        kt.layernorm_row(ngot.data(), base.data(), n, 1e-5f);
    const float istd_want =
        Ref().layernorm_row(nwant.data(), base.data(), n, 1e-5f);
    EXPECT_NEAR(istd_got, istd_want,
                1e-4 * std::abs(static_cast<double>(istd_want)))
        << "layernorm istd n=" << n;
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(ngot[i], nwant[i],
                  1e-4 * (1.0 + std::abs(static_cast<double>(nwant[i]))))
          << "layernorm n=" << n;
    }
  }
}

TEST_P(KernelsTierParityTest, SparseKernelsWithinTolerance) {
  const KernelTable& kt = Tier();
  Rng rng(29);
  const size_t dense_n = 512;
  for (size_t nnz : kSizes) {
    const auto dense = RandomVec(&rng, dense_n);
    std::vector<SparseEntry> entries(nnz);
    double magnitude = 0.0;
    for (auto& e : entries) {
      e.index = static_cast<uint32_t>(rng.Uniform(dense_n));
      e.value = static_cast<float>(rng.UniformDouble(-2.0, 2.0));
      magnitude += std::abs(static_cast<double>(e.value)) * 2.0;
    }
    ExpectWithinBudget(kt.sparse_dot(entries.data(), nnz, dense.data()),
                       Ref().sparse_dot(entries.data(), nnz, dense.data()),
                       magnitude, "sparse_dot", nnz);

    // sparse_axpy scatters with += into possibly-duplicated indices; all
    // tiers must apply entries in order, so results are bit-exact.
    auto got = dense, want = dense;
    kt.sparse_axpy(entries.data(), nnz, 0.5f, got.data());
    Ref().sparse_axpy(entries.data(), nnz, 0.5f, want.data());
    ASSERT_TRUE(BitIdentical(got, want)) << "sparse_axpy nnz=" << nnz;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Tiers, KernelsTierParityTest, ::testing::ValuesIn(AvailableSimdTiers()),
    [](const ::testing::TestParamInfo<SimdLevel>& info) {
      return SimdLevelName(info.param);
    });

// Guard against an empty instantiation on non-x86 hosts.
GTEST_ALLOW_UNINSTANTIATED_PARAMETERIZED_TEST(KernelsTierParityTest);

// ---------------------------------------------------------------------------
// 3. Dispatch.
// ---------------------------------------------------------------------------

TEST(KernelsDispatchTest, ActiveTableMatchesActiveLevel) {
  EXPECT_EQ(Kernels().level, ActiveSimdLevel());
  // Without SEMTAG_SIMD the dispatcher must pick the best supported level;
  // with it, never something above best-supported.
  const char* env = std::getenv("SEMTAG_SIMD");
  if (env == nullptr || env[0] == '\0') {
    EXPECT_EQ(ActiveSimdLevel(), BestSupportedSimdLevel());
  } else {
    EXPECT_LE(static_cast<int>(ActiveSimdLevel()),
              static_cast<int>(BestSupportedSimdLevel()));
  }
}

TEST(KernelsDispatchTest, TableForReturnsRequestedLevel) {
  EXPECT_EQ(KernelTableFor(SimdLevel::kScalar).level, SimdLevel::kScalar);
  for (SimdLevel level : AvailableSimdTiers()) {
    EXPECT_EQ(KernelTableFor(level).level, level);
  }
}

TEST(KernelsDispatchTest, ScalarAlwaysAvailable) {
  EXPECT_TRUE(SimdLevelAvailable(SimdLevel::kScalar));
}

TEST(KernelsDispatchTest, LevelNames) {
  EXPECT_STREQ(SimdLevelName(SimdLevel::kScalar), "scalar");
  EXPECT_STREQ(SimdLevelName(SimdLevel::kSse2), "sse2");
  EXPECT_STREQ(SimdLevelName(SimdLevel::kAvx2), "avx2");
}

}  // namespace
}  // namespace semtag::la
