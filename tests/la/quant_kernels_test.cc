// Int8 inference tier tests, in three groups:
//
//  1. Quantize/dequantize properties: per-row absmax scheme invariants
//     (scale = absmax/127, |q| <= 127, -128 never produced, nearest-even
//     rounding, reconstruction error <= scale/2 per element).
//  2. Int8 GEMM vs the fp32 reference within an analytic error bound
//     computed from the actual operands.
//  3. Cross-tier bit-equality: every compiled-in SIMD tier must agree with
//     the scalar quant kernels bit for bit — int8 codes, float scales,
//     int32 accumulators, and dequantized floats (the dequant pass uses no
//     FMA contraction on any tier, so the float edges round identically).

#include "la/quant.h"

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "la/buffer_pool.h"
#include "la/kernels.h"
#include "la/matrix.h"

namespace semtag::la {
namespace {

std::vector<float> RandomVec(Rng* rng, size_t n, double lo = -2.0,
                             double hi = 2.0) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng->UniformDouble(lo, hi));
  return v;
}

Matrix RandomMatrix(Rng* rng, size_t r, size_t c, double lo = -1.5,
                    double hi = 1.5) {
  Matrix m(r, c);
  for (size_t i = 0; i < r; ++i) {
    for (size_t j = 0; j < c; ++j) {
      m(i, j) = static_cast<float>(rng->UniformDouble(lo, hi));
    }
  }
  return m;
}

const size_t kSizes[] = {1, 2, 3, 7, 8, 15, 16, 31, 32, 33, 63, 64, 100,
                         255, 256, 1000};

std::vector<SimdLevel> AvailableSimdTiers() {
  std::vector<SimdLevel> tiers;
  for (SimdLevel level : {SimdLevel::kSse2, SimdLevel::kAvx2}) {
    if (SimdLevelAvailable(level)) tiers.push_back(level);
  }
  return tiers;
}

// ---------------------------------------------------------------------------
// 1. Quantize/dequantize properties.
// ---------------------------------------------------------------------------

TEST(QuantizeRowI8, ScaleAndReconstruction) {
  Rng rng(101);
  const KernelTable& kt = KernelTableFor(SimdLevel::kScalar);
  for (size_t n : kSizes) {
    const std::vector<float> x = RandomVec(&rng, n, -3.0, 3.0);
    std::vector<int8_t> q(n);
    const float scale = kt.quantize_row_i8(x.data(), n, q.data());
    float absmax = 0.0f;
    for (float v : x) absmax = std::max(absmax, std::fabs(v));
    EXPECT_FLOAT_EQ(scale, absmax / 127.0f);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_GE(q[i], -127) << "codes must avoid -128 (maddubs sign trick)";
      EXPECT_LE(q[i], 127);
      // Nearest rounding: reconstruction error is at most half a step
      // (plus float slack for the inverse-scale multiply).
      EXPECT_NEAR(static_cast<float>(q[i]) * scale, x[i],
                  scale * 0.5f + 1e-6f);
    }
  }
}

TEST(QuantizeRowI8, ZeroRowHasZeroScale) {
  const KernelTable& kt = KernelTableFor(SimdLevel::kScalar);
  std::vector<float> x(37, 0.0f);
  std::vector<int8_t> q(37, 55);
  EXPECT_EQ(kt.quantize_row_i8(x.data(), x.size(), q.data()), 0.0f);
  for (int8_t v : q) EXPECT_EQ(v, 0);
}

TEST(QuantizeRowI8, NearestEvenRounding) {
  const KernelTable& kt = KernelTableFor(SimdLevel::kScalar);
  // absmax = 127 => scale 1, inv = 1: codes are lrintf of the values.
  const std::vector<float> x = {127.0f, 2.5f, 3.5f, -2.5f, 0.49f, -127.0f};
  std::vector<int8_t> q(x.size());
  kt.quantize_row_i8(x.data(), x.size(), q.data());
  EXPECT_EQ(q[0], 127);
  EXPECT_EQ(q[1], 2);   // ties to even
  EXPECT_EQ(q[2], 4);   // ties to even
  EXPECT_EQ(q[3], -2);  // ties to even
  EXPECT_EQ(q[4], 0);
  EXPECT_EQ(q[5], -127);
}

TEST(QuantizedMatrixTest, FromRowsAndFromColumns) {
  Rng rng(77);
  const Matrix m = RandomMatrix(&rng, 9, 13);
  const QuantizedMatrix by_rows = QuantizedMatrix::FromRows(m);
  EXPECT_EQ(by_rows.rows(), 9u);
  EXPECT_EQ(by_rows.cols(), 13u);
  const QuantizedMatrix by_cols = QuantizedMatrix::FromColumns(m);
  EXPECT_EQ(by_cols.rows(), 13u);  // row r of the view is column r of m
  EXPECT_EQ(by_cols.cols(), 9u);
  for (size_t c = 0; c < m.cols(); ++c) {
    float absmax = 0.0f;
    for (size_t r = 0; r < m.rows(); ++r) {
      absmax = std::max(absmax, std::fabs(m(r, c)));
    }
    EXPECT_FLOAT_EQ(by_cols.scale(c), absmax / 127.0f);
  }
}

TEST(QuantizedMatrixTest, DequantGatherRowsReconstructs) {
  Rng rng(78);
  const Matrix table = RandomMatrix(&rng, 20, 16, -0.5, 0.5);
  const QuantizedMatrix q = QuantizedMatrix::FromRows(table);
  const std::vector<int32_t> ids = {3, 0, 19, 3, 7};
  Matrix out;
  DequantGatherRows(q, ids.data(), ids.size(), &out);
  ASSERT_EQ(out.rows(), ids.size());
  ASSERT_EQ(out.cols(), table.cols());
  for (size_t i = 0; i < ids.size(); ++i) {
    const size_t r = static_cast<size_t>(ids[i]);
    for (size_t c = 0; c < table.cols(); ++c) {
      EXPECT_NEAR(out(i, c), table(r, c), q.scale(r) * 0.5f + 1e-6f);
    }
  }
}

TEST(QuantEnvTest, QuantInferenceEnabledReReadsEnv) {
  unsetenv("SEMTAG_QUANT");
  EXPECT_FALSE(QuantInferenceEnabled());
  setenv("SEMTAG_QUANT", "1", 1);
  EXPECT_TRUE(QuantInferenceEnabled());
  setenv("SEMTAG_QUANT", "0", 1);
  EXPECT_FALSE(QuantInferenceEnabled());
  setenv("SEMTAG_QUANT", "yes", 1);
  EXPECT_FALSE(QuantInferenceEnabled());  // exact "1" only
  unsetenv("SEMTAG_QUANT");
}

// ---------------------------------------------------------------------------
// 2. Int8 GEMM vs fp32 reference, analytic error bound.
// ---------------------------------------------------------------------------

TEST(QuantMatMulTest, MatchesFp32WithinQuantizationBound) {
  Rng rng(202);
  const struct {
    size_t m, k, n;
  } shapes[] = {{1, 8, 4}, {3, 20, 5}, {32, 32, 128}, {17, 100, 33}};
  for (const auto& s : shapes) {
    const Matrix x = RandomMatrix(&rng, s.m, s.k);
    const Matrix w = RandomMatrix(&rng, s.k, s.n);
    Matrix bias(1, s.n);
    for (size_t j = 0; j < s.n; ++j) {
      bias(0, j) = static_cast<float>(rng.UniformDouble(-0.5, 0.5));
    }
    Matrix ref;
    MatMul(x, w, &ref);
    AddRowBroadcast(&ref, bias);

    const QuantizedMatrix wq = QuantizedMatrix::FromColumns(w);
    Matrix out;
    QuantMatMul(x, wq, &bias, QuantAct::kNone, &out);
    ASSERT_EQ(out.rows(), s.m);
    ASSERT_EQ(out.cols(), s.n);

    for (size_t i = 0; i < s.m; ++i) {
      // Per-row analytic bound: |x_j - x̂_j| <= s_x/2 and
      // |w_jc - ŵ_jc| <= s_c/2, so the dot error is at most
      // s_x/2 * sum|w_col| + s_c/2 * (sum|x| + k * s_x/2).
      float x_absmax = 0.0f, x_abssum = 0.0f;
      for (size_t j = 0; j < s.k; ++j) {
        x_absmax = std::max(x_absmax, std::fabs(x(i, j)));
        x_abssum += std::fabs(x(i, j));
      }
      const float sx = x_absmax / 127.0f;
      for (size_t c = 0; c < s.n; ++c) {
        float w_abssum = 0.0f;
        for (size_t j = 0; j < s.k; ++j) w_abssum += std::fabs(w(j, c));
        const float sc = wq.scale(c);
        const float bound = 0.5f * sx * w_abssum +
                            0.5f * sc * (x_abssum + s.k * 0.5f * sx) + 1e-4f;
        EXPECT_NEAR(out(i, c), ref(i, c), bound)
            << "m=" << s.m << " k=" << s.k << " n=" << s.n << " at (" << i
            << "," << c << ")";
      }
    }
  }
}

TEST(QuantMatMulTest, FusedReluMatchesSeparateRelu) {
  Rng rng(203);
  const Matrix x = RandomMatrix(&rng, 5, 24);
  const Matrix w = RandomMatrix(&rng, 24, 7);
  Matrix bias(1, 7);
  for (size_t j = 0; j < 7; ++j) {
    bias(0, j) = static_cast<float>(rng.UniformDouble(-1.0, 1.0));
  }
  const QuantizedMatrix wq = QuantizedMatrix::FromColumns(w);
  Matrix plain, fused;
  QuantMatMul(x, wq, &bias, QuantAct::kNone, &plain);
  QuantMatMul(x, wq, &bias, QuantAct::kRelu, &fused);
  for (size_t i = 0; i < plain.rows(); ++i) {
    for (size_t j = 0; j < plain.cols(); ++j) {
      EXPECT_EQ(fused(i, j), std::max(plain(i, j), 0.0f));
    }
  }
}

TEST(QuantMatMulTest, PreQuantizedActivationsMatchOnTheFly) {
  Rng rng(204);
  const Matrix x = RandomMatrix(&rng, 6, 40);
  const Matrix w = RandomMatrix(&rng, 40, 9);
  const QuantizedMatrix wq = QuantizedMatrix::FromColumns(w);
  Matrix direct, pre;
  QuantMatMul(x, wq, nullptr, QuantAct::kNone, &direct);
  const QuantizedActivations xq = QuantizeActivations(x);
  QuantMatMulPre(xq, wq, nullptr, QuantAct::kNone, &pre);
  ASSERT_EQ(direct.rows(), pre.rows());
  ASSERT_EQ(direct.cols(), pre.cols());
  EXPECT_EQ(std::memcmp(direct.data(), pre.data(),
                        direct.size() * sizeof(float)),
            0);
}

// ---------------------------------------------------------------------------
// 3. Cross-tier bit-equality.
// ---------------------------------------------------------------------------

TEST(QuantCrossTier, QuantizeRowBitIdentical) {
  Rng rng(301);
  const KernelTable& ref = KernelTableFor(SimdLevel::kScalar);
  for (SimdLevel level : AvailableSimdTiers()) {
    const KernelTable& kt = KernelTableFor(level);
    for (size_t n : kSizes) {
      const std::vector<float> x = RandomVec(&rng, n, -4.0, 4.0);
      std::vector<int8_t> q_ref(n), q_simd(n);
      const float s_ref = ref.quantize_row_i8(x.data(), n, q_ref.data());
      const float s_simd = kt.quantize_row_i8(x.data(), n, q_simd.data());
      EXPECT_EQ(std::memcmp(&s_ref, &s_simd, sizeof(float)), 0)
          << SimdLevelName(level) << " n=" << n << " scale mismatch";
      EXPECT_EQ(std::memcmp(q_ref.data(), q_simd.data(), n), 0)
          << SimdLevelName(level) << " n=" << n;
    }
  }
}

TEST(QuantCrossTier, DotI8BitIdentical) {
  Rng rng(302);
  const KernelTable& ref = KernelTableFor(SimdLevel::kScalar);
  for (SimdLevel level : AvailableSimdTiers()) {
    const KernelTable& kt = KernelTableFor(level);
    for (size_t n : kSizes) {
      std::vector<int8_t> a(n), b0(n), b1(n), b2(n), b3(n);
      for (size_t i = 0; i < n; ++i) {
        a[i] = static_cast<int8_t>(rng.Uniform(255) - 127);
        b0[i] = static_cast<int8_t>(rng.Uniform(255) - 127);
        b1[i] = static_cast<int8_t>(rng.Uniform(255) - 127);
        b2[i] = static_cast<int8_t>(rng.Uniform(255) - 127);
        b3[i] = static_cast<int8_t>(rng.Uniform(255) - 127);
      }
      EXPECT_EQ(ref.dot_i8(a.data(), b0.data(), n),
                kt.dot_i8(a.data(), b0.data(), n))
          << SimdLevelName(level) << " n=" << n;
      int32_t acc_ref[4], acc_simd[4];
      ref.dot4_i8(a.data(), b0.data(), b1.data(), b2.data(), b3.data(), n,
                  acc_ref);
      kt.dot4_i8(a.data(), b0.data(), b1.data(), b2.data(), b3.data(), n,
                 acc_simd);
      for (int j = 0; j < 4; ++j) {
        EXPECT_EQ(acc_ref[j], acc_simd[j])
            << SimdLevelName(level) << " n=" << n << " lane " << j;
      }
    }
  }
}

TEST(QuantCrossTier, DotI8SaturationSafeAtExtremes) {
  // 2 * 127 * 127 = 32258 < 32767: the maddubs int16 pair-sum cannot
  // saturate for codes in [-127, 127]. Exercise the worst case.
  const KernelTable& ref = KernelTableFor(SimdLevel::kScalar);
  for (size_t n : {size_t{32}, size_t{64}, size_t{100}}) {
    std::vector<int8_t> a(n, 127), b(n, -127);
    const int32_t expect = -127 * 127 * static_cast<int32_t>(n);
    EXPECT_EQ(ref.dot_i8(a.data(), b.data(), n), expect);
    for (SimdLevel level : AvailableSimdTiers()) {
      EXPECT_EQ(KernelTableFor(level).dot_i8(a.data(), b.data(), n), expect)
          << SimdLevelName(level) << " n=" << n;
    }
  }
}

TEST(QuantCrossTier, DequantAffineRowBitIdentical) {
  Rng rng(303);
  const KernelTable& ref = KernelTableFor(SimdLevel::kScalar);
  for (SimdLevel level : AvailableSimdTiers()) {
    const KernelTable& kt = KernelTableFor(level);
    for (size_t n : kSizes) {
      std::vector<int32_t> acc(n);
      for (auto& v : acc) {
        v = static_cast<int32_t>(rng.Uniform(2000000)) - 1000000;
      }
      const std::vector<float> scales = RandomVec(&rng, n, 0.0, 0.1);
      const std::vector<float> bias = RandomVec(&rng, n, -1.0, 1.0);
      const float a_scale = static_cast<float>(rng.UniformDouble(0.0, 0.1));
      for (bool relu : {false, true}) {
        std::vector<float> out_ref(n), out_simd(n);
        ref.dequant_affine_row(out_ref.data(), acc.data(), a_scale,
                               scales.data(), bias.data(), n, relu);
        kt.dequant_affine_row(out_simd.data(), acc.data(), a_scale,
                              scales.data(), bias.data(), n, relu);
        EXPECT_EQ(std::memcmp(out_ref.data(), out_simd.data(),
                              n * sizeof(float)),
                  0)
            << SimdLevelName(level) << " n=" << n << " relu=" << relu;
        // Null bias must also agree.
        ref.dequant_affine_row(out_ref.data(), acc.data(), a_scale,
                               scales.data(), nullptr, n, relu);
        kt.dequant_affine_row(out_simd.data(), acc.data(), a_scale,
                              scales.data(), nullptr, n, relu);
        EXPECT_EQ(std::memcmp(out_ref.data(), out_simd.data(),
                              n * sizeof(float)),
                  0)
            << SimdLevelName(level) << " n=" << n << " relu=" << relu
            << " (null bias)";
      }
    }
  }
}

TEST(QuantCrossTier, FullPipelineBitIdentical) {
  // Compose quantize -> dot -> dequant per tier by hand (the module-level
  // QuantMatMul latches one dispatched table per process) and require the
  // final floats to match bit for bit.
  Rng rng(304);
  const size_t m = 5, k = 37, n = 11;
  const Matrix x = RandomMatrix(&rng, m, k);
  const Matrix w = RandomMatrix(&rng, k, n);
  const Matrix wt = w.Transposed();

  auto run = [&](const KernelTable& kt, Matrix* out) {
    std::vector<int8_t> wq(n * k);
    std::vector<float> w_scales(n);
    for (size_t c = 0; c < n; ++c) {
      w_scales[c] = kt.quantize_row_i8(wt.Row(c), k, wq.data() + c * k);
    }
    *out = Matrix(m, n);
    std::vector<int8_t> xq(k);
    std::vector<int32_t> acc(n);
    for (size_t i = 0; i < m; ++i) {
      const float sx = kt.quantize_row_i8(x.Row(i), k, xq.data());
      size_t c = 0;
      for (; c + 4 <= n; c += 4) {
        kt.dot4_i8(xq.data(), wq.data() + c * k, wq.data() + (c + 1) * k,
                   wq.data() + (c + 2) * k, wq.data() + (c + 3) * k, k,
                   acc.data() + c);
      }
      for (; c < n; ++c) {
        acc[c] = kt.dot_i8(xq.data(), wq.data() + c * k, k);
      }
      kt.dequant_affine_row(out->Row(i), acc.data(), sx, w_scales.data(),
                            nullptr, n, false);
    }
  };

  Matrix ref;
  run(KernelTableFor(SimdLevel::kScalar), &ref);
  for (SimdLevel level : AvailableSimdTiers()) {
    Matrix out;
    run(KernelTableFor(level), &out);
    EXPECT_EQ(
        std::memcmp(ref.data(), out.data(), ref.size() * sizeof(float)), 0)
        << SimdLevelName(level);
  }
}

TEST(BufferPoolTypedTest, Int8AndInt32RoundTrip) {
  int8_t* p8 = BufferPool::AcquireI8(1000);
  ASSERT_NE(p8, nullptr);
  for (size_t i = 0; i < 1000; ++i) p8[i] = static_cast<int8_t>(i & 0x7f);
  for (size_t i = 0; i < 1000; ++i) {
    ASSERT_EQ(p8[i], static_cast<int8_t>(i & 0x7f));
  }
  BufferPool::ReleaseI8(p8, 1000);
  int32_t* p32 = BufferPool::AcquireI32(333);
  ASSERT_NE(p32, nullptr);
  for (size_t i = 0; i < 333; ++i) p32[i] = static_cast<int32_t>(i) - 100;
  for (size_t i = 0; i < 333; ++i) {
    ASSERT_EQ(p32[i], static_cast<int32_t>(i) - 100);
  }
  BufferPool::ReleaseI32(p32, 333);
}

}  // namespace
}  // namespace semtag::la
