#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "la/init.h"
#include "la/matrix.h"

namespace semtag::la {
namespace {

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5f);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  EXPECT_FLOAT_EQ(m.At(1, 2), 1.5f);
  m.At(0, 1) = 7.0f;
  EXPECT_FLOAT_EQ(m(0, 1), 7.0f);
}

TEST(MatrixTest, FromRows) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_FLOAT_EQ(m(2, 1), 6.0f);
}

TEST(MatrixTest, ElementwiseOps) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{10, 20}, {30, 40}});
  a.Add(b);
  EXPECT_FLOAT_EQ(a(1, 1), 44.0f);
  a.Sub(b);
  EXPECT_FLOAT_EQ(a(1, 1), 4.0f);
  a.Mul(b);
  EXPECT_FLOAT_EQ(a(0, 0), 10.0f);
  a.Scale(0.5f);
  EXPECT_FLOAT_EQ(a(0, 0), 5.0f);
  a.Axpy(2.0f, b);
  EXPECT_FLOAT_EQ(a(0, 1), 20.0f + 40.0f * 1.0f + 0.0f);
}

TEST(MatrixTest, Reductions) {
  Matrix m = Matrix::FromRows({{-1, 2}, {3, -4}});
  EXPECT_FLOAT_EQ(m.Sum(), 0.0f);
  EXPECT_FLOAT_EQ(m.Min(), -4.0f);
  EXPECT_FLOAT_EQ(m.Max(), 3.0f);
  EXPECT_FLOAT_EQ(m.Norm(), std::sqrt(1.0f + 4 + 9 + 16));
}

TEST(MatrixTest, Transposed) {
  Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_FLOAT_EQ(t(2, 1), 6.0f);
}

TEST(MatMulTest, KnownProduct) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  Matrix c;
  MatMul(a, b, &c);
  EXPECT_FLOAT_EQ(c(0, 0), 19.0f);
  EXPECT_FLOAT_EQ(c(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(c(1, 0), 43.0f);
  EXPECT_FLOAT_EQ(c(1, 1), 50.0f);
}

TEST(MatMulTest, TransposedVariantsAgree) {
  Rng rng(3);
  Matrix a(4, 6);
  Matrix b(6, 5);
  GaussianInit(&a, &rng, 1.0f);
  GaussianInit(&b, &rng, 1.0f);
  Matrix direct;
  MatMul(a, b, &direct);

  Matrix at = a.Transposed();
  Matrix via_ta;
  MatMulTransA(at, b, &via_ta);
  Matrix bt = b.Transposed();
  Matrix via_tb;
  MatMulTransB(a, bt, &via_tb);
  ASSERT_TRUE(direct.SameShape(via_ta));
  ASSERT_TRUE(direct.SameShape(via_tb));
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_NEAR(direct.data()[i], via_ta.data()[i], 1e-4);
    EXPECT_NEAR(direct.data()[i], via_tb.data()[i], 1e-4);
  }
}

TEST(MatrixHelpersTest, RowBroadcastAndSumRows) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix row = Matrix::FromRows({{10, 20}});
  AddRowBroadcast(&m, row);
  EXPECT_FLOAT_EQ(m(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(m(1, 1), 24.0f);
  Matrix sums = SumRows(m);
  EXPECT_EQ(sums.rows(), 1u);
  EXPECT_FLOAT_EQ(sums(0, 0), 11.0f + 13.0f);
  EXPECT_FLOAT_EQ(sums(0, 1), 22.0f + 24.0f);
}

TEST(InitTest, XavierWithinLimit) {
  Rng rng(5);
  Matrix m(64, 64);
  XavierUniform(&m, &rng);
  const double limit = std::sqrt(6.0 / 128.0);
  for (size_t i = 0; i < m.size(); ++i) {
    EXPECT_LE(std::fabs(m.data()[i]), limit);
  }
  EXPECT_GT(m.Norm(), 0.0f);
}

TEST(InitTest, HeNormalHasExpectedSpread) {
  Rng rng(7);
  Matrix m(200, 50);
  HeNormal(&m, &rng);
  double sq = 0.0;
  for (size_t i = 0; i < m.size(); ++i) {
    sq += static_cast<double>(m.data()[i]) * m.data()[i];
  }
  EXPECT_NEAR(sq / static_cast<double>(m.size()), 2.0 / 200.0, 0.002);
}

TEST(DotTest, Basics) {
  const float a[] = {1, 2, 3};
  const float b[] = {4, 5, 6};
  EXPECT_FLOAT_EQ(Dot(a, b, 3), 32.0f);
  EXPECT_FLOAT_EQ(Dot(a, b, 0), 0.0f);
}

}  // namespace
}  // namespace semtag::la
