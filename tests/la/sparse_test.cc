#include <cmath>

#include <gtest/gtest.h>

#include "la/sparse.h"

namespace semtag::la {
namespace {

TEST(SparseVectorTest, SortAndMergeCombinesDuplicates) {
  SparseVector v;
  v.Push(5, 1.0f);
  v.Push(2, 2.0f);
  v.Push(5, 3.0f);
  v.Push(2, 1.0f);
  v.SortAndMerge();
  ASSERT_EQ(v.nnz(), 2u);
  EXPECT_EQ(v.entries()[0].index, 2u);
  EXPECT_FLOAT_EQ(v.entries()[0].value, 3.0f);
  EXPECT_EQ(v.entries()[1].index, 5u);
  EXPECT_FLOAT_EQ(v.entries()[1].value, 4.0f);
}

TEST(SparseVectorTest, NormAndNormalize) {
  SparseVector v;
  v.Push(0, 3.0f);
  v.Push(7, 4.0f);
  EXPECT_FLOAT_EQ(v.Norm(), 5.0f);
  v.L2Normalize();
  EXPECT_NEAR(v.Norm(), 1.0f, 1e-6);
  EXPECT_FLOAT_EQ(v.entries()[0].value, 0.6f);
}

TEST(SparseVectorTest, NormalizeZeroVectorIsNoop) {
  SparseVector v;
  v.L2Normalize();
  EXPECT_EQ(v.nnz(), 0u);
}

TEST(SparseVectorTest, DotWithDense) {
  SparseVector v;
  v.Push(1, 2.0f);
  v.Push(3, -1.0f);
  const float dense[] = {9, 10, 11, 12};
  EXPECT_FLOAT_EQ(v.Dot(dense), 2.0f * 10 - 12.0f);
}

TEST(SparseVectorTest, AxpyInto) {
  SparseVector v;
  v.Push(0, 1.0f);
  v.Push(2, 2.0f);
  float dense[3] = {0, 0, 0};
  v.AxpyInto(3.0f, dense);
  EXPECT_FLOAT_EQ(dense[0], 3.0f);
  EXPECT_FLOAT_EQ(dense[1], 0.0f);
  EXPECT_FLOAT_EQ(dense[2], 6.0f);
}

TEST(SparseMatrixTest, RowsAndNnz) {
  SparseMatrix m(100);
  SparseVector a;
  a.Push(1, 1.0f);
  SparseVector b;
  b.Push(2, 1.0f);
  b.Push(3, 1.0f);
  m.AddRow(a);
  m.AddRow(b);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 100u);
  EXPECT_EQ(m.TotalNnz(), 3u);
  EXPECT_EQ(m.Row(1).nnz(), 2u);
}

}  // namespace
}  // namespace semtag::la
