// Cross-process snapshot merge: counters sum, gauges sum, histograms merge
// bucket-wise, and structural disagreements (different bounds for the same
// name) fail loudly instead of under-counting.

#include <filesystem>
#include <cstring>
#include <fstream>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/snapshot_merge.h"
#include "obs/validate.h"

namespace semtag::obs {
namespace {

class SnapshotMergeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetMetricsEnabled(true);
    ResetMetricsForTest();
  }
  void TearDown() override {
    ResetMetricsForTest();
    SetMetricsEnabled(false);
  }

  /// Exports the live registry as one worker's snapshot, then clears it —
  /// exactly what a shard worker process does before _exit.
  std::string TakeSnapshot() {
    std::string json = MetricsToJson(SnapshotMetrics());
    ResetMetricsForTest();
    return json;
  }
};

uint64_t CounterValue(const MetricsSnapshot& snap, const std::string& name) {
  for (const auto& [n, v] : snap.counters) {
    if (n == name) return v;
  }
  return 0;
}

double GaugeValue(const MetricsSnapshot& snap, const std::string& name) {
  for (const auto& [n, v] : snap.gauges) {
    if (n == name) return v;
  }
  return -1.0;
}

const HistogramSnapshot* FindHistogram(const MetricsSnapshot& snap,
                                       const std::string& name) {
  for (const auto& [n, h] : snap.histograms) {
    if (n == name) return &h;
  }
  return nullptr;
}

TEST_F(SnapshotMergeTest, CountersAndGaugesSumAcrossSnapshots) {
  GetCounter("cells").Add(3);
  GetGauge("busy_ms").Add(100.0);
  const std::string a = TakeSnapshot();
  GetCounter("cells").Add(4);
  GetCounter("reclaims").Add(1);
  GetGauge("busy_ms").Add(50.0);
  const std::string b = TakeSnapshot();

  const MergeOutcome out = MergeMetricsJson({a, b});
  ASSERT_TRUE(out.ok) << out.error;
  EXPECT_EQ(out.inputs, 2);
  EXPECT_EQ(CounterValue(out.merged, "cells"), 7u);
  EXPECT_EQ(CounterValue(out.merged, "reclaims"), 1u);
  // Name-based lookup: earlier tests in this binary may have registered
  // other gauges, which survive ResetMetricsForTest at value zero.
  EXPECT_NEAR(GaugeValue(out.merged, "busy_ms"), 150.0, 1e-6);
  // The merged snapshot is itself a valid v1 document.
  EXPECT_TRUE(ValidateMetricsJson(MetricsToJson(out.merged)).ok);
}

TEST_F(SnapshotMergeTest, HistogramsMergeBucketWise) {
  const std::vector<double> bounds = {1.0, 10.0, 100.0};
  GetHistogram("lat", bounds).ObserveAlways(0.5);
  GetHistogram("lat", bounds).ObserveAlways(5.0);
  const std::string a = TakeSnapshot();
  GetHistogram("lat", bounds).ObserveAlways(50.0);
  GetHistogram("lat", bounds).ObserveAlways(500.0);
  const std::string b = TakeSnapshot();

  const MergeOutcome out = MergeMetricsJson({a, b});
  ASSERT_TRUE(out.ok) << out.error;
  const HistogramSnapshot* found = FindHistogram(out.merged, "lat");
  ASSERT_NE(found, nullptr);
  const HistogramSnapshot& h = *found;
  EXPECT_EQ(h.count, 4u);
  ASSERT_EQ(h.counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(h.counts[0], 1u);
  EXPECT_EQ(h.counts[1], 1u);
  EXPECT_EQ(h.counts[2], 1u);
  EXPECT_EQ(h.counts[3], 1u);
  EXPECT_NEAR(h.sum, 555.5, 1e-6);
  EXPECT_NEAR(h.min, 0.5, 1e-9);
  EXPECT_NEAR(h.max, 500.0, 1e-9);
}

TEST_F(SnapshotMergeTest, BoundsMismatchFailsTheMerge) {
  GetHistogram("lat_mm", {1.0, 10.0}).ObserveAlways(2.0);
  const std::string a = TakeSnapshot();
  // A worker running different code would register "lat" with different
  // bounds; the registry pins bounds per name in-process, so fake the
  // second process by editing its exported document.
  std::string b = a;
  const size_t pos = b.find("\"bounds\": [1, 10]");
  ASSERT_NE(pos, std::string::npos) << b;
  b.replace(pos, strlen("\"bounds\": [1, 10]"), "\"bounds\": [1, 20]");
  const MergeOutcome out = MergeMetricsJson({a, b});
  EXPECT_FALSE(out.ok);
  EXPECT_NE(out.error.find("lat_mm"), std::string::npos);
}

TEST_F(SnapshotMergeTest, InvalidSnapshotFailsTheMerge) {
  GetCounter("cells").Add(1);
  const std::string good = TakeSnapshot();
  const MergeOutcome out = MergeMetricsJson({good, "{\"schema\": \"v0\"}"});
  EXPECT_FALSE(out.ok);
  EXPECT_NE(out.error.find("snapshot 1"), std::string::npos);
}

TEST_F(SnapshotMergeTest, MergesFilesAndRejectsMissingOnes) {
  const auto dir = std::filesystem::temp_directory_path();
  const std::string path = (dir / "semtag_merge_a.json").string();
  GetCounter("cells").Add(2);
  {
    std::ofstream out(path, std::ios::trunc);
    out << TakeSnapshot();
  }
  const MergeOutcome ok = MergeMetricsFiles({path});
  ASSERT_TRUE(ok.ok) << ok.error;
  EXPECT_EQ(CounterValue(ok.merged, "cells"), 2u);
  const MergeOutcome missing =
      MergeMetricsFiles({path, (dir / "semtag_merge_nope.json").string()});
  EXPECT_FALSE(missing.ok);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace semtag::obs
