#include "obs/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/validate.h"

namespace semtag::obs {
namespace {

/// Runs every test against empty rings with tracing on, restoring the
/// process-level enabled state afterwards (a CI run exporting
/// $SEMTAG_TRACE still gets its atexit flush).
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = TraceEnabled();
    SetTraceEnabled(true);
    ResetTraceForTest();
  }
  void TearDown() override {
    ResetTraceForTest();
    SetTraceEnabled(was_enabled_);
  }

 private:
  bool was_enabled_ = false;
};

/// (ph, name) pairs of traceEvents in export order, plus the parsed root.
struct ParsedTrace {
  JsonValue root;
  std::vector<std::pair<char, std::string>> events;
};

ParsedTrace Parse(const std::string& json) {
  ParsedTrace out;
  std::string err;
  EXPECT_TRUE(ParseJson(json, &out.root, &err)) << err;
  const JsonValue* events = out.root.Find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    ADD_FAILURE() << "no traceEvents array";
    return out;
  }
  for (const JsonValue& e : events->array) {
    const JsonValue* ph = e.Find("ph");
    const JsonValue* name = e.Find("name");
    if (ph == nullptr || name == nullptr) {
      ADD_FAILURE() << "event missing ph/name";
      continue;
    }
    out.events.emplace_back(ph->string_value.empty() ? '?'
                                                     : ph->string_value[0],
                            name->string_value);
  }
  return out;
}

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  SetTraceEnabled(false);
  {
    TraceSpan span("should_not_appear");
    TraceSpan tagged("also_not", "tag");
  }
  SetTraceEnabled(true);
  const TraceStats stats = GetTraceStats();
  EXPECT_EQ(stats.recorded, 0u);
  // An empty export is still a valid chrome-trace file.
  const ValidationResult check = ValidateTraceJson(TraceToJson());
  EXPECT_TRUE(check.ok) << check.error;
  EXPECT_EQ(check.events, 0);
}

TEST_F(TraceTest, SpanStartedWhileDisabledStaysInert) {
  SetTraceEnabled(false);
  {
    TraceSpan span("born_disabled");
    // Enabling mid-span must not produce a record with no begin stamp.
    SetTraceEnabled(true);
    span.SetTag("late");
  }
  EXPECT_EQ(GetTraceStats().recorded, 0u);
}

TEST_F(TraceTest, NestingIsReproducedInExportOrder) {
  {
    TraceSpan outer("outer");
    {
      TraceSpan inner("inner");
    }
    {
      TraceSpan sibling("sibling");
    }
  }
  const ParsedTrace parsed = Parse(TraceToJson());
  const std::vector<std::pair<char, std::string>> expected = {
      {'B', "outer"},   {'B', "inner"},   {'E', "inner"},
      {'B', "sibling"}, {'E', "sibling"}, {'E', "outer"},
  };
  EXPECT_EQ(parsed.events, expected);
  const ValidationResult check = ValidateTraceJson(TraceToJson());
  EXPECT_TRUE(check.ok) << check.error;
  EXPECT_EQ(check.events, 6);
}

TEST_F(TraceTest, GoldenExportFieldsParseBack) {
  {
    TraceSpan outer("golden/outer");
    TraceSpan inner("golden/inner", "cell-ok");
  }
  const ParsedTrace parsed = Parse(TraceToJson());
  ASSERT_EQ(parsed.events.size(), 4u);
  const JsonValue* unit = parsed.root.Find("displayTimeUnit");
  ASSERT_NE(unit, nullptr);
  EXPECT_EQ(unit->string_value, "ms");

  const JsonValue* events = parsed.root.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  double prev_ts = -1.0;
  for (const JsonValue& e : events->array) {
    EXPECT_EQ(e.Find("cat")->string_value, "semtag");
    EXPECT_DOUBLE_EQ(e.Find("pid")->number, 1.0);
    ASSERT_TRUE(e.Find("ts")->is_number());
    EXPECT_GE(e.Find("ts")->number, prev_ts);
    prev_ts = e.Find("ts")->number;
    EXPECT_TRUE(e.Find("tid")->is_number());
  }
  // The tag rides on the end event of the tagged span only.
  const JsonValue& inner_end = events->array[2];
  ASSERT_EQ(inner_end.Find("name")->string_value, "golden/inner");
  const JsonValue* args = inner_end.Find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_EQ(args->Find("tag")->string_value, "cell-ok");
  EXPECT_EQ(events->array[3].Find("args"), nullptr);
}

TEST_F(TraceTest, ThreadsGetDistinctTids) {
  auto worker = [](const char* name) {
    TraceSpan span(name);
  };
  std::thread a(worker, "thread_a");
  std::thread b(worker, "thread_b");
  a.join();
  b.join();
  const ParsedTrace parsed = Parse(TraceToJson());
  ASSERT_EQ(parsed.events.size(), 4u);
  const JsonValue* events = parsed.root.Find("traceEvents");
  int tid_a = -1;
  int tid_b = -1;
  for (const JsonValue& e : events->array) {
    const int tid = static_cast<int>(e.Find("tid")->number);
    if (e.Find("name")->string_value == "thread_a") tid_a = tid;
    if (e.Find("name")->string_value == "thread_b") tid_b = tid;
  }
  EXPECT_GT(tid_a, 0);
  EXPECT_GT(tid_b, 0);
  EXPECT_NE(tid_a, tid_b);
  const ValidationResult check = ValidateTraceJson(TraceToJson());
  EXPECT_TRUE(check.ok) << check.error;
}

TEST_F(TraceTest, LongNamesAndTagsAreTruncatedNotCorrupted) {
  const std::string long_name(200, 'n');
  const std::string long_tag(200, 't');
  {
    TraceSpan span(long_name.c_str(), long_tag.c_str());
  }
  const ParsedTrace parsed = Parse(TraceToJson());
  ASSERT_EQ(parsed.events.size(), 2u);
  EXPECT_EQ(parsed.events[0].second,
            std::string(TraceSpan::kNameChars - 1, 'n'));
  const JsonValue* args = parsed.root.Find("traceEvents")->array[1].Find(
      "args");
  ASSERT_NE(args, nullptr);
  EXPECT_EQ(args->Find("tag")->string_value,
            std::string(TraceSpan::kTagChars - 1, 't'));
}

TEST_F(TraceTest, RingOverflowDropsOldestButStaysBalanced) {
  // The ring capacity is latched from $SEMTAG_TRACE_RING on first use
  // (64 .. 1<<20, default 8192); spin until wrap-around is observed.
  TraceStats stats;
  for (int i = 0; i < (1 << 20) + 256 && stats.dropped == 0; ++i) {
    TraceSpan span("overflow");
    if ((i & 1023) == 1023) stats = GetTraceStats();
  }
  stats = GetTraceStats();
  EXPECT_GT(stats.dropped, 0u);
  EXPECT_GT(stats.recorded, 0u);
  // Dropped records take their begin AND end with them, so the export is
  // still balanced and valid.
  const ValidationResult check = ValidateTraceJson(TraceToJson());
  EXPECT_TRUE(check.ok) << check.error;
  EXPECT_EQ(check.events, static_cast<int>(stats.recorded) * 2);
}

TEST_F(TraceTest, ResetEmptiesRings) {
  {
    TraceSpan span("pre_reset");
  }
  EXPECT_EQ(GetTraceStats().recorded, 1u);
  ResetTraceForTest();
  const TraceStats stats = GetTraceStats();
  EXPECT_EQ(stats.recorded, 0u);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(ValidateTraceJson(TraceToJson()).events, 0);
}

}  // namespace
}  // namespace semtag::obs
