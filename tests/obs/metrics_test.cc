#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "obs/validate.h"

namespace semtag::obs {
namespace {

/// Every test runs against the enabled, zeroed registry and restores the
/// process-level enabled state afterwards (a CI run exporting
/// $SEMTAG_METRICS still gets its atexit flush).
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enabled_ = MetricsEnabled();
    SetMetricsEnabled(true);
    ResetMetricsForTest();
  }
  void TearDown() override {
    ResetMetricsForTest();
    SetMetricsEnabled(was_enabled_);
  }

 private:
  bool was_enabled_ = false;
};

TEST_F(MetricsTest, CounterAccumulates) {
  Counter& c = GetCounter("test/counter_accumulates");
  c.Add(1);
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
  // Same name -> same handle.
  GetCounter("test/counter_accumulates").Add(8);
  EXPECT_EQ(c.Value(), 50u);
}

TEST_F(MetricsTest, DisabledIncrementsAreDropped) {
  Counter& c = GetCounter("test/disabled_counter");
  SetMetricsEnabled(false);
  c.Add(100);
  SEMTAG_OBS_COUNT("test/disabled_counter", 5);
  SetMetricsEnabled(true);
  EXPECT_EQ(c.Value(), 0u);
}

TEST_F(MetricsTest, GaugeSetIsLastWriterAndAddAccumulates) {
  Gauge& g = GetGauge("test/gauge");
  g.Set(2.5);
  g.Set(7.25);
  EXPECT_DOUBLE_EQ(g.Value(), 7.25);
  g.Add(0.5);
  g.Add(0.25);
  EXPECT_DOUBLE_EQ(g.Value(), 8.0);
}

TEST_F(MetricsTest, HistogramBucketBoundariesAreInclusive) {
  // An observation v lands in the first bucket with v <= bounds[i].
  const std::vector<double> bounds = {1.0, 2.0, 5.0};
  Histogram& h = GetHistogram("test/bounds", bounds);
  h.Observe(-3.0);   // below every bound -> bucket 0
  h.Observe(1.0);    // exactly on a bound -> that bucket
  h.Observe(1.0001); // just above -> next bucket
  h.Observe(2.0);    // on the second bound -> bucket 1
  h.Observe(5.0);    // on the last bound -> bucket 2
  h.Observe(5.0001); // above the last bound -> overflow bucket
  const std::vector<uint64_t> counts = h.Counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.TotalCount(), 6u);
  EXPECT_DOUBLE_EQ(h.Min(), -3.0);
  // Fixed-point storage: values are exact to 1/kSumScale.
  EXPECT_NEAR(h.Max(), 5.0001, 2.0 / kSumScale);
  EXPECT_NEAR(h.Sum(), -3.0 + 1.0 + 1.0001 + 2.0 + 5.0 + 5.0001,
              12.0 / kSumScale);
}

TEST_F(MetricsTest, EmptyHistogramHasInfiniteExtrema) {
  Histogram& h = GetHistogram("test/empty", LossBuckets());
  EXPECT_EQ(h.TotalCount(), 0u);
  EXPECT_TRUE(std::isinf(h.Min()));
  EXPECT_TRUE(std::isinf(h.Max()));
  EXPECT_GT(h.Min(), 0.0);
  EXPECT_LT(h.Max(), 0.0);
}

/// Distributes the same multiset of observations over `threads` threads
/// and returns the merged snapshot of one histogram + one counter. The
/// registry guarantees the result is identical for any partition.
HistogramSnapshot ObserveAcrossThreads(int threads, uint64_t* counter_total) {
  ResetMetricsForTest();
  Histogram& h = GetHistogram("test/sharded", LossBuckets());
  Counter& c = GetCounter("test/sharded_counter");
  constexpr int kValues = 4096;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&h, &c, t, threads] {
      for (int i = t; i < kValues; i += threads) {
        h.Observe(0.001 * static_cast<double>(i));
        c.Add(static_cast<uint64_t>(i));
      }
    });
  }
  for (auto& w : workers) w.join();
  *counter_total = c.Value();
  const MetricsSnapshot snap = SnapshotMetrics();
  for (const auto& [name, hs] : snap.histograms) {
    if (name == "test/sharded") return hs;
  }
  ADD_FAILURE() << "test/sharded missing from snapshot";
  return HistogramSnapshot();
}

TEST_F(MetricsTest, ShardedMergeIsDeterministicAcrossThreadCounts) {
  uint64_t total1 = 0, total4 = 0, total16 = 0;
  const HistogramSnapshot one = ObserveAcrossThreads(1, &total1);
  const HistogramSnapshot four = ObserveAcrossThreads(4, &total4);
  const HistogramSnapshot sixteen = ObserveAcrossThreads(16, &total16);
  EXPECT_EQ(total1, total4);
  EXPECT_EQ(total1, total16);
  EXPECT_EQ(one.counts, four.counts);
  EXPECT_EQ(one.counts, sixteen.counts);
  // Sums/extrema accumulate in fixed-point integers, so the merged doubles
  // are bit-identical, not merely close.
  EXPECT_EQ(one.sum, four.sum);
  EXPECT_EQ(one.sum, sixteen.sum);
  EXPECT_EQ(one.min, four.min);
  EXPECT_EQ(one.max, sixteen.max);
}

TEST_F(MetricsTest, CollectorRunsAtSnapshot) {
  static bool registered = RegisterCollector(
      +[] { GetGauge("test/collected").Set(123.0); });
  EXPECT_TRUE(registered);
  const MetricsSnapshot snap = SnapshotMetrics();
  bool found = false;
  for (const auto& [name, value] : snap.gauges) {
    if (name == "test/collected") {
      found = true;
      EXPECT_DOUBLE_EQ(value, 123.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(MetricsTest, JsonRoundTripsThroughValidator) {
  GetCounter("test/json_counter").Add(7);
  GetGauge("test/json_gauge").Set(1.5);
  Histogram& h = GetHistogram("test/json_hist", LatencyBucketsUs());
  h.Observe(3.0);
  h.Observe(250.0);
  const std::string json = MetricsToJson(SnapshotMetrics());
  const ValidationResult check = ValidateMetricsJson(json);
  EXPECT_TRUE(check.ok) << check.error;
  EXPECT_GE(check.counters, 1);
  EXPECT_GE(check.histograms, 1);

  JsonValue root;
  std::string err;
  ASSERT_TRUE(ParseJson(json, &root, &err)) << err;
  const JsonValue* counter = root.Find("counters")->Find("test/json_counter");
  ASSERT_NE(counter, nullptr);
  EXPECT_DOUBLE_EQ(counter->number, 7.0);
  const JsonValue* hist = root.Find("histograms")->Find("test/json_hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_DOUBLE_EQ(hist->Find("count")->number, 2.0);
}

TEST_F(MetricsTest, WriteMetricsJsonPublishesAtomically) {
  GetCounter("test/file_counter").Add(3);
  const std::string path =
      ::testing::TempDir() + "/metrics_test_snapshot.json";
  ASSERT_TRUE(WriteMetricsJson(path));
  const ValidationResult check = ValidateMetricsFile(path);
  EXPECT_TRUE(check.ok) << check.error;
  std::remove(path.c_str());
}

TEST_F(MetricsTest, ResetZeroesEverythingButKeepsHandles) {
  Counter& c = GetCounter("test/reset_counter");
  Histogram& h = GetHistogram("test/reset_hist", LossBuckets());
  c.Add(5);
  h.Observe(0.5);
  ResetMetricsForTest();
  EXPECT_EQ(c.Value(), 0u);
  EXPECT_EQ(h.TotalCount(), 0u);
  c.Add(2);
  EXPECT_EQ(c.Value(), 2u);
}

TEST_F(MetricsTest, HandleObsFlagParsesBothFlags) {
  const std::string saved_path = MetricsExportPath();
  EXPECT_FALSE(HandleObsFlag("--unrelated"));
  EXPECT_FALSE(HandleObsFlag("--metricsx"));
  EXPECT_TRUE(HandleObsFlag("--metrics=/tmp/m.json"));
  EXPECT_EQ(MetricsExportPath(), "/tmp/m.json");
  EXPECT_TRUE(MetricsEnabled());
  EXPECT_TRUE(HandleObsFlag("--metrics"));
  EXPECT_EQ(MetricsExportPath(), "semtag_metrics.json");
  SetMetricsExportPath(saved_path);
}

TEST(BucketPresetTest, ServeLatencyBucketsResolveSloPercentiles) {
  const std::vector<double>& buckets = ServeLatencyBucketsUs();
  ASSERT_GE(buckets.size(), 24u);
  EXPECT_DOUBLE_EQ(buckets.front(), 10.0);   // 10us floor
  EXPECT_DOUBLE_EQ(buckets.back(), 1e7);     // 10s tail
  // Strictly ascending, and fine-grained across the whole SLO range
  // (10us..1s): adjacent bounds within ~1.6x so a percentile read off the
  // histogram is within ±25% of the true value.
  for (size_t i = 1; i < buckets.size(); ++i) {
    ASSERT_LT(buckets[i - 1], buckets[i]) << "bucket " << i;
    if (buckets[i] <= 1e6) {
      EXPECT_LE(buckets[i] / buckets[i - 1], 1.6)
          << "gap too coarse at bucket " << i;
    }
  }
}

}  // namespace
}  // namespace semtag::obs
