#include <cmath>

#include <gtest/gtest.h>

#include "text/bow_vectorizer.h"

namespace semtag::text {
namespace {

BowOptions PlainCounts() {
  BowOptions opts;
  opts.use_idf = false;
  opts.l2_normalize = false;
  opts.min_doc_freq = 1;
  return opts;
}

TEST(BowVectorizerTest, CountsTokens) {
  BowVectorizer vec(PlainCounts());
  vec.Fit({"the cat", "the dog"});
  const auto x = vec.Transform("the the cat");
  // Feature "the" has count 2, "cat" count 1; bigrams "the_the"/"the_cat"
  // only exist if seen at fit time ("the_cat" was).
  double total = 0.0;
  for (const auto& e : x.entries()) total += e.value;
  EXPECT_DOUBLE_EQ(total, 2.0 + 1.0 + 1.0);
}

TEST(BowVectorizerTest, UnseenTokensIgnored) {
  BowVectorizer vec(PlainCounts());
  vec.Fit({"alpha beta"});
  const auto x = vec.Transform("gamma delta");
  EXPECT_TRUE(x.empty());
}

TEST(BowVectorizerTest, MinDocFreqPrunes) {
  BowOptions opts = PlainCounts();
  opts.min_doc_freq = 2;
  BowVectorizer vec(opts);
  vec.Fit({"common rare1", "common rare2"});
  EXPECT_EQ(vec.num_features(), 1u);  // only "common" survives
}

TEST(BowVectorizerTest, IdfWeightsRareTokensHigher) {
  BowOptions opts;
  opts.min_doc_freq = 1;
  opts.use_idf = true;
  opts.l2_normalize = false;
  opts.max_ngram = 1;
  BowVectorizer vec(opts);
  // "common" in 4/4 docs, "rare" in 1/4.
  vec.Fit({"common rare", "common", "common", "common"});
  const int32_t common_id = vec.vocabulary().Lookup("common");
  const int32_t rare_id = vec.vocabulary().Lookup("rare");
  ASSERT_NE(common_id, kUnknownTokenId);
  ASSERT_NE(rare_id, kUnknownTokenId);
  EXPECT_GT(vec.IdfOf(rare_id), vec.IdfOf(common_id));
  // idf(t) = log(n/df) + 1.
  EXPECT_NEAR(vec.IdfOf(common_id), std::log(4.0 / 4.0) + 1.0, 1e-5);
  EXPECT_NEAR(vec.IdfOf(rare_id), std::log(4.0 / 1.0) + 1.0, 1e-5);
}

TEST(BowVectorizerTest, L2NormalizedOutput) {
  BowOptions opts;
  opts.min_doc_freq = 1;
  BowVectorizer vec(opts);
  vec.Fit({"a b c", "a b", "c d"});
  const auto x = vec.Transform("a b c d");
  EXPECT_NEAR(x.Norm(), 1.0f, 1e-5);
}

TEST(BowVectorizerTest, TransformAllShapes) {
  BowVectorizer vec(PlainCounts());
  vec.Fit({"x y", "y z"});
  const auto m = vec.TransformAll({"x", "y", "unseen"});
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), vec.num_features());
  EXPECT_EQ(m.Row(2).nnz(), 0u);
}

TEST(BowVectorizerTest, MaxFeaturesCaps) {
  BowOptions opts = PlainCounts();
  opts.max_features = 3;
  BowVectorizer vec(opts);
  vec.Fit({"a b c d e f g h"});
  EXPECT_EQ(vec.num_features(), 3u);
}

TEST(BowVectorizerTest, BigramsCaptureWordOrder) {
  BowVectorizer vec(PlainCounts());
  vec.Fit({"not good", "good"});
  const int32_t bigram = vec.vocabulary().Lookup("not_good");
  EXPECT_NE(bigram, kUnknownTokenId);
}

}  // namespace
}  // namespace semtag::text
