#include <gtest/gtest.h>

#include "text/ngram.h"

namespace semtag::text {
namespace {

TEST(NgramTest, UnigramsOnly) {
  EXPECT_EQ(ExtractNgrams({"a", "b", "c"}, 1, 1),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(NgramTest, UnigramsAndBigrams) {
  EXPECT_EQ(ExtractNgrams({"try", "the", "cakes"}, 1, 2),
            (std::vector<std::string>{"try", "the", "cakes", "try_the",
                                      "the_cakes"}));
}

TEST(NgramTest, TrigramsJoinAllWords) {
  const auto grams = ExtractNgrams({"a", "b", "c", "d"}, 3, 3);
  EXPECT_EQ(grams, (std::vector<std::string>{"a_b_c", "b_c_d"}));
}

TEST(NgramTest, ShortInputYieldsNoHigherGrams) {
  EXPECT_EQ(ExtractNgrams({"solo"}, 1, 2),
            (std::vector<std::string>{"solo"}));
  EXPECT_TRUE(ExtractNgrams({}, 1, 2).empty());
}

TEST(NgramTest, CountsMatchFormula) {
  // n tokens yield n unigrams + (n-1) bigrams.
  std::vector<std::string> tokens(10, "w");
  EXPECT_EQ(ExtractNgrams(tokens, 1, 2).size(), 10u + 9u);
}

}  // namespace
}  // namespace semtag::text
