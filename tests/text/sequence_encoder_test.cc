#include <gtest/gtest.h>

#include "text/sequence_encoder.h"

namespace semtag::text {
namespace {

SequenceEncoder MakeEncoder(int max_len, bool add_cls) {
  SequenceEncoderOptions opts;
  opts.max_len = max_len;
  opts.add_cls = add_cls;
  opts.min_doc_freq = 1;
  SequenceEncoder enc(opts);
  enc.Fit({"the cat sat", "the dog ran"});
  return enc;
}

TEST(SequenceEncoderTest, PadsToMaxLen) {
  auto enc = MakeEncoder(8, false);
  const auto ids = enc.Encode("the cat");
  ASSERT_EQ(ids.size(), 8u);
  EXPECT_NE(ids[0], kPadId);
  EXPECT_NE(ids[1], kPadId);
  for (size_t i = 2; i < 8; ++i) EXPECT_EQ(ids[i], kPadId);
}

TEST(SequenceEncoderTest, TruncatesLongInput) {
  auto enc = MakeEncoder(3, false);
  const auto ids = enc.Encode("the cat sat the dog ran");
  EXPECT_EQ(ids.size(), 3u);
  for (int32_t id : ids) EXPECT_NE(id, kPadId);
}

TEST(SequenceEncoderTest, ClsLeadsWhenEnabled) {
  auto enc = MakeEncoder(5, true);
  const auto ids = enc.Encode("cat");
  EXPECT_EQ(ids[0], kClsId);
  EXPECT_GE(ids[1], kNumSpecialTokens);
}

TEST(SequenceEncoderTest, UnknownWordsMapToUnk) {
  auto enc = MakeEncoder(4, false);
  const auto ids = enc.Encode("zebra cat");
  EXPECT_EQ(ids[0], kUnkId);
  EXPECT_GE(ids[1], kNumSpecialTokens);
}

TEST(SequenceEncoderTest, VocabSizeIncludesSpecials) {
  auto enc = MakeEncoder(4, false);
  // 5 distinct words ("the" is shared) + 4 special ids.
  EXPECT_EQ(enc.vocab_size(), 5 + kNumSpecialTokens);
}

TEST(SequenceEncoderTest, WordIdsAreStable) {
  auto enc = MakeEncoder(4, false);
  const auto a = enc.Encode("cat dog");
  const auto b = enc.Encode("cat dog");
  EXPECT_EQ(a, b);
}

TEST(SequenceEncoderTest, SetVocabularyInstallsExternalVocab) {
  Vocabulary vocab;
  vocab.Add("hello", 3);
  SequenceEncoderOptions opts;
  opts.max_len = 3;
  SequenceEncoder enc(opts);
  enc.SetVocabulary(std::move(vocab));
  const auto ids = enc.Encode("hello stranger");
  EXPECT_EQ(ids[0], kNumSpecialTokens + 0);
  EXPECT_EQ(ids[1], kUnkId);
}

}  // namespace
}  // namespace semtag::text
