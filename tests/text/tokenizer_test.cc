#include <gtest/gtest.h>

#include "text/tokenizer.h"

namespace semtag::text {
namespace {

TEST(TokenizerTest, SplitsOnNonAlnum) {
  EXPECT_EQ(Tokenize("Try the cup-cakes, now!"),
            (std::vector<std::string>{"try", "the", "cup", "cakes", "now"}));
}

TEST(TokenizerTest, LowercasesByDefault) {
  EXPECT_EQ(Tokenize("HeLLo World"),
            (std::vector<std::string>{"hello", "world"}));
}

TEST(TokenizerTest, CanPreserveCase) {
  TokenizerOptions opts;
  opts.lowercase = false;
  EXPECT_EQ(Tokenize("Hello World", opts),
            (std::vector<std::string>{"Hello", "World"}));
}

TEST(TokenizerTest, KeepsApostropheInsideWords) {
  EXPECT_EQ(Tokenize("don't stop"),
            (std::vector<std::string>{"don't", "stop"}));
  // A trailing apostrophe is a separator.
  EXPECT_EQ(Tokenize("dogs' toys"),
            (std::vector<std::string>{"dogs", "toys"}));
}

TEST(TokenizerTest, NumbersAreTokens) {
  EXPECT_EQ(Tokenize("20% tip is customary"),
            (std::vector<std::string>{"20", "tip", "is", "customary"}));
}

TEST(TokenizerTest, PunctuationModeEmitsMarks) {
  TokenizerOptions opts;
  opts.keep_punctuation = true;
  EXPECT_EQ(Tokenize("so clean!!", opts),
            (std::vector<std::string>{"so", "clean", "!", "!"}));
}

TEST(TokenizerTest, EmptyAndWhitespaceOnly) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("   \t\n ").empty());
  EXPECT_TRUE(Tokenize("!?.,;:").empty());
}

}  // namespace
}  // namespace semtag::text
