#include <gtest/gtest.h>

#include "text/vocabulary.h"

namespace semtag::text {
namespace {

TEST(VocabularyTest, AddAndLookup) {
  Vocabulary v;
  const int32_t a = v.Add("hello", 10);
  const int32_t b = v.Add("world", 5);
  EXPECT_EQ(v.size(), 2);
  EXPECT_EQ(v.Lookup("hello"), a);
  EXPECT_EQ(v.Lookup("world"), b);
  EXPECT_EQ(v.Lookup("missing"), kUnknownTokenId);
  EXPECT_EQ(v.TokenOf(a), "hello");
  EXPECT_EQ(v.DocFreqOf(b), 5);
}

TEST(VocabularyBuilderTest, DocumentFrequencyCountsOncePerDoc) {
  VocabularyBuilder builder;
  builder.AddDocument({"a", "a", "a", "b"});
  builder.AddDocument({"a", "c"});
  Vocabulary v = builder.Build(/*min_count=*/1);
  // "a" appears in 2 docs, "b"/"c" in one each.
  EXPECT_EQ(v.DocFreqOf(v.Lookup("a")), 2);
  EXPECT_EQ(v.DocFreqOf(v.Lookup("b")), 1);
}

TEST(VocabularyBuilderTest, MinCountPrunes) {
  VocabularyBuilder builder;
  builder.AddDocument({"common", "rare"});
  builder.AddDocument({"common"});
  Vocabulary v = builder.Build(/*min_count=*/2);
  EXPECT_EQ(v.size(), 1);
  EXPECT_NE(v.Lookup("common"), kUnknownTokenId);
  EXPECT_EQ(v.Lookup("rare"), kUnknownTokenId);
}

TEST(VocabularyBuilderTest, MaxSizeKeepsMostFrequent) {
  VocabularyBuilder builder;
  for (int i = 0; i < 3; ++i) builder.AddDocument({"top"});
  for (int i = 0; i < 2; ++i) builder.AddDocument({"mid"});
  builder.AddDocument({"low"});
  Vocabulary v = builder.Build(1, /*max_size=*/2);
  EXPECT_EQ(v.size(), 2);
  EXPECT_NE(v.Lookup("top"), kUnknownTokenId);
  EXPECT_NE(v.Lookup("mid"), kUnknownTokenId);
  EXPECT_EQ(v.Lookup("low"), kUnknownTokenId);
}

TEST(VocabularyBuilderTest, IdsAreFrequencyRanked) {
  VocabularyBuilder builder;
  for (int i = 0; i < 5; ++i) builder.AddDocument({"most"});
  for (int i = 0; i < 3; ++i) builder.AddDocument({"second"});
  builder.AddDocument({"third"});
  Vocabulary v = builder.Build(1);
  EXPECT_EQ(v.Lookup("most"), 0);
  EXPECT_EQ(v.Lookup("second"), 1);
  EXPECT_EQ(v.Lookup("third"), 2);
}

TEST(VocabularyBuilderTest, DeterministicTieBreakIsAlphabetical) {
  VocabularyBuilder builder;
  builder.AddDocument({"zebra", "apple"});
  Vocabulary v = builder.Build(1);
  EXPECT_EQ(v.Lookup("apple"), 0);
  EXPECT_EQ(v.Lookup("zebra"), 1);
}

TEST(VocabularyBuilderTest, DistinctTokensGrows) {
  VocabularyBuilder builder;
  builder.AddDocument({"a", "b"});
  EXPECT_EQ(builder.DistinctTokens(), 2u);
  builder.AddDocument({"b", "c", "d"});
  EXPECT_EQ(builder.DistinctTokens(), 4u);
}

}  // namespace
}  // namespace semtag::text
