#include <gtest/gtest.h>

#include "data/dataset.h"

namespace semtag::data {
namespace {

Dataset MakeDataset(int n_pos, int n_neg) {
  Dataset d("test");
  for (int i = 0; i < n_pos; ++i) {
    d.Add(Example{"positive text " + std::to_string(i), 1, 1});
  }
  for (int i = 0; i < n_neg; ++i) {
    d.Add(Example{"negative text " + std::to_string(i), 0, 0});
  }
  return d;
}

TEST(DatasetTest, PositiveRatioAndCount) {
  Dataset d = MakeDataset(3, 7);
  EXPECT_EQ(d.size(), 10u);
  EXPECT_EQ(d.PositiveCount(), 3);
  EXPECT_DOUBLE_EQ(d.PositiveRatio(), 0.3);
}

TEST(DatasetTest, EmptyDatasetRatios) {
  Dataset d;
  EXPECT_DOUBLE_EQ(d.PositiveRatio(), 0.0);
  EXPECT_EQ(d.PositiveCount(), 0);
}

TEST(DatasetTest, SplitPreservesAllRecords) {
  Dataset d = MakeDataset(10, 10);
  auto [train, test] = d.Split(0.8);
  EXPECT_EQ(train.size(), 16u);
  EXPECT_EQ(test.size(), 4u);
  EXPECT_EQ(train.name(), "test/train");
  EXPECT_EQ(test.name(), "test/test");
}

TEST(DatasetTest, ShuffleIsDeterministicPermutation) {
  Dataset d = MakeDataset(5, 5);
  Dataset d2 = d;
  Rng r1(9);
  Rng r2(9);
  d.Shuffle(&r1);
  d2.Shuffle(&r2);
  for (size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(d[i].text, d2[i].text);
  }
  EXPECT_EQ(d.PositiveCount(), 5);
}

TEST(DatasetTest, TakeClamps) {
  Dataset d = MakeDataset(2, 2);
  EXPECT_EQ(d.Take(3).size(), 3u);
  EXPECT_EQ(d.Take(100).size(), 4u);
}

TEST(DatasetTest, StatsCountVocabulary) {
  Dataset d("stats");
  d.Add(Example{"alpha beta gamma", 1, 1});
  d.Add(Example{"alpha beta", 0, 0});
  const DatasetStats stats = d.ComputeStats();
  EXPECT_EQ(stats.num_records, 2);
  EXPECT_EQ(stats.num_positive, 1);
  EXPECT_EQ(stats.vocab_size, 3);
  EXPECT_DOUBLE_EQ(stats.avg_tokens_per_record, 2.5);
}

TEST(DatasetTest, TextsAndLabelsAlign) {
  Dataset d = MakeDataset(1, 1);
  const auto texts = d.Texts();
  const auto labels = d.Labels();
  ASSERT_EQ(texts.size(), 2u);
  ASSERT_EQ(labels.size(), 2u);
  EXPECT_EQ(labels[0], 1);
  EXPECT_EQ(labels[1], 0);
}

}  // namespace
}  // namespace semtag::data
