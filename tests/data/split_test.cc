#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "data/split.h"

namespace semtag::data {
namespace {

Dataset MakeDataset(int n_pos, int n_neg) {
  Dataset d("split");
  for (int i = 0; i < n_pos; ++i) {
    d.Add(Example{"p" + std::to_string(i), 1, 1});
  }
  for (int i = 0; i < n_neg; ++i) {
    d.Add(Example{"n" + std::to_string(i), 0, 0});
  }
  return d;
}

TEST(StratifiedSplitTest, PreservesRatioExactly) {
  Dataset d = MakeDataset(20, 180);  // 10% positive
  Rng rng(1);
  auto [train, test] = StratifiedSplit(d, 0.8, &rng);
  EXPECT_EQ(train.size() + test.size(), d.size());
  EXPECT_EQ(train.PositiveCount(), 16);
  EXPECT_EQ(test.PositiveCount(), 4);
}

TEST(StratifiedSplitTest, ExtremeImbalanceKeepsTestPositives) {
  // 8 positives in 500 records: a random split frequently leaves the test
  // side empty; the stratified one must not.
  Dataset d = MakeDataset(8, 492);
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed);
    auto [train, test] = StratifiedSplit(d, 0.8, &rng);
    EXPECT_GE(test.PositiveCount(), 1) << "seed " << seed;
    EXPECT_GE(train.PositiveCount(), 6) << "seed " << seed;
  }
}

TEST(StratifiedSplitTest, NoRecordLostOrDuplicated) {
  Dataset d = MakeDataset(13, 29);
  Rng rng(3);
  auto [train, test] = StratifiedSplit(d, 0.7, &rng);
  std::set<std::string> seen;
  for (const auto& e : train.examples()) seen.insert(e.text);
  for (const auto& e : test.examples()) seen.insert(e.text);
  EXPECT_EQ(seen.size(), d.size());
}

TEST(StratifiedFoldsTest, FoldsBalancedAndComplete) {
  Dataset d = MakeDataset(25, 75);
  Rng rng(5);
  const auto folds = StratifiedFolds(d, 5, &rng);
  ASSERT_EQ(folds.size(), 5u);
  size_t total = 0;
  for (const auto& fold : folds) {
    EXPECT_EQ(fold.size(), 20u);
    EXPECT_EQ(fold.PositiveCount(), 5);
    total += fold.size();
  }
  EXPECT_EQ(total, d.size());
}

TEST(StratifiedFoldsTest, UnevenSizesDifferByAtMostOnePerClass) {
  Dataset d = MakeDataset(11, 23);  // neither divisible by 3
  Rng rng(7);
  const auto folds = StratifiedFolds(d, 3, &rng);
  int64_t min_pos = 1 << 20, max_pos = 0;
  for (const auto& fold : folds) {
    min_pos = std::min(min_pos, fold.PositiveCount());
    max_pos = std::max(max_pos, fold.PositiveCount());
  }
  EXPECT_LE(max_pos - min_pos, 1);
}

TEST(MergeFoldsExceptTest, ExcludesExactlyTheHoldout) {
  Dataset d = MakeDataset(10, 20);
  Rng rng(9);
  const auto folds = StratifiedFolds(d, 3, &rng);
  const Dataset merged = MergeFoldsExcept(folds, 1);
  EXPECT_EQ(merged.size(), d.size() - folds[1].size());
  std::set<std::string> holdout_texts;
  for (const auto& e : folds[1].examples()) holdout_texts.insert(e.text);
  for (const auto& e : merged.examples()) {
    EXPECT_FALSE(holdout_texts.count(e.text)) << e.text;
  }
}

}  // namespace
}  // namespace semtag::data
