#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "common/csv.h"
#include "data/io.h"

namespace semtag::data {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(DatasetIoTest, RoundTrip) {
  Dataset d("roundtrip");
  d.Add(Example{"plain sentence", 1, 1});
  d.Add(Example{"with, comma and \"quotes\"", 0, 0});
  d.Add(Example{"line\nbreak", 1, 1});
  const std::string path = TempPath("semtag_io_roundtrip.csv");
  ASSERT_TRUE(SaveDatasetToCsv(d, path).ok());
  auto loaded = LoadDatasetFromCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 3u);
  for (size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ((*loaded)[i].text, d[i].text);
    EXPECT_EQ((*loaded)[i].label, d[i].label);
  }
  std::remove(path.c_str());
}

TEST(DatasetIoTest, HeaderColumnOrderIsFlexible) {
  const std::string path = TempPath("semtag_io_order.csv");
  ASSERT_TRUE(WriteStringToFile(
                  path, "label,source,text\n1,web,hello world\n0,app,bye\n")
                  .ok());
  auto loaded = LoadDatasetFromCsv(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ((*loaded)[0].text, "hello world");
  EXPECT_EQ((*loaded)[0].label, 1);
  std::remove(path.c_str());
}

TEST(DatasetIoTest, MissingColumnsRejected) {
  const std::string path = TempPath("semtag_io_badheader.csv");
  ASSERT_TRUE(WriteStringToFile(path, "body,tag\nhello,1\n").ok());
  EXPECT_EQ(LoadDatasetFromCsv(path).status().code(),
            StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(DatasetIoTest, NonBinaryLabelRejected) {
  const std::string path = TempPath("semtag_io_badlabel.csv");
  ASSERT_TRUE(
      WriteStringToFile(path, "text,label\nhello,positive\n").ok());
  EXPECT_FALSE(LoadDatasetFromCsv(path).ok());
  std::remove(path.c_str());
}

TEST(DatasetIoTest, ShortRowRejected) {
  const std::string path = TempPath("semtag_io_short.csv");
  ASSERT_TRUE(WriteStringToFile(path, "text,label\nonly-text\n").ok());
  EXPECT_FALSE(LoadDatasetFromCsv(path).ok());
  std::remove(path.c_str());
}

TEST(DatasetIoTest, MissingFileIsIoError) {
  EXPECT_EQ(LoadDatasetFromCsv("/nonexistent/x.csv").status().code(),
            StatusCode::kIoError);
}

TEST(DatasetIoTest, DatasetNameFromFileStem) {
  const std::string path = TempPath("my_reviews.csv");
  ASSERT_TRUE(WriteStringToFile(path, "text,label\nhi,1\nbye,0\n").ok());
  auto loaded = LoadDatasetFromCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->name(), "my_reviews");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace semtag::data
