#include <unordered_set>

#include <gtest/gtest.h>

#include "data/generator.h"
#include "data/specs.h"
#include "text/tokenizer.h"

namespace semtag::data {
namespace {

GeneratorConfig TestConfig() {
  GeneratorConfig config;
  config.bg_vocab = 2000;
  config.signal_topic = 22;
  config.positive_topics = {23, 24};
  config.negative_topics = {25, 26};
  config.signal_strength = 0.3;
  config.signal_leak = 0.2;
  config.seed = 77;
  return config;
}

TEST(LanguageTest, DeterministicWords) {
  const Language& lang = SharedLanguage();
  EXPECT_EQ(lang.Word(0), "the");
  EXPECT_GT(lang.num_topics(), 40);
  // Topic 0 starts right after the stopwords with sentiment words.
  EXPECT_EQ(lang.Word(lang.TopicWordId(0, 0)), "great");
  EXPECT_EQ(lang.Word(lang.TopicWordId(1, 0)), "bad");
}

TEST(LanguageTest, EntityNamesAreCapitalizedAndDiverse) {
  std::unordered_set<std::string> names;
  for (uint64_t i = 0; i < 1000; ++i) {
    const std::string name = Language::EntityName(i);
    EXPECT_TRUE(isupper(static_cast<unsigned char>(name[0])));
    names.insert(name);
  }
  EXPECT_EQ(names.size(), 1000u);  // open vocabulary: all distinct
}

TEST(GenerateDatasetTest, ExactObservedRatio) {
  const Dataset d =
      GenerateDataset(SharedLanguage(), TestConfig(), "t", 1000, 0.2);
  EXPECT_EQ(d.size(), 1000u);
  EXPECT_EQ(d.PositiveCount(), 200);
}

TEST(GenerateDatasetTest, DeterministicUnderSeed) {
  const Dataset a =
      GenerateDataset(SharedLanguage(), TestConfig(), "t", 50, 0.5);
  const Dataset b =
      GenerateDataset(SharedLanguage(), TestConfig(), "t", 50, 0.5);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].text, b[i].text);
    EXPECT_EQ(a[i].label, b[i].label);
  }
}

TEST(GenerateDatasetTest, CleanLabelsMatchTrueLabels) {
  const Dataset d =
      GenerateDataset(SharedLanguage(), TestConfig(), "t", 500, 0.3);
  for (const auto& e : d.examples()) EXPECT_EQ(e.label, e.true_label);
}

TEST(GenerateDatasetTest, ContaminationFlipsSomeNegatives) {
  GeneratorConfig config = TestConfig();
  config.neg_contamination = 0.3;
  const Dataset d =
      GenerateDataset(SharedLanguage(), config, "dirty", 2000, 0.1);
  int contaminated = 0;
  int clean_neg = 0;
  for (const auto& e : d.examples()) {
    if (e.label == 0) {
      if (e.true_label == 1) ++contaminated;
      else ++clean_neg;
    } else {
      EXPECT_EQ(e.true_label, 1);  // pos_contamination is 0
    }
  }
  const double rate =
      contaminated / static_cast<double>(contaminated + clean_neg);
  EXPECT_NEAR(rate, 0.3, 0.04);
}

TEST(GenerateDatasetTest, SignalWordsSeparateClasses) {
  const GeneratorConfig config = TestConfig();
  const Dataset d =
      GenerateDataset(SharedLanguage(), config, "t", 2000, 0.5);
  const Language& lang = SharedLanguage();
  std::unordered_set<std::string> signal_words;
  for (int k = 0; k < Language::kTopicSize; ++k) {
    signal_words.insert(lang.Word(lang.TopicWordId(config.signal_topic, k)));
  }
  int64_t pos_docs_with_signal = 0;
  int64_t neg_docs_with_signal = 0;
  int64_t pos_docs = 0;
  int64_t neg_docs = 0;
  for (const auto& e : d.examples()) {
    bool has = false;
    for (const auto& tok : text::Tokenize(e.text)) {
      if (signal_words.count(tok)) {
        has = true;
        break;
      }
    }
    if (e.label == 1) {
      ++pos_docs;
      pos_docs_with_signal += has;
    } else {
      ++neg_docs;
      neg_docs_with_signal += has;
    }
  }
  const double p = pos_docs_with_signal / static_cast<double>(pos_docs);
  const double n = neg_docs_with_signal / static_cast<double>(neg_docs);
  EXPECT_GT(p, n + 0.3);  // strong class-conditional gap
}

TEST(GenerateDatasetTest, EntitySignalIntroducesNames) {
  GeneratorConfig config = TestConfig();
  config.entity_signal = 0.9;
  const Dataset d =
      GenerateDataset(SharedLanguage(), config, "t", 300, 0.5);
  int with_capital = 0;
  for (const auto& e : d.examples()) {
    if (e.label != 1) continue;
    for (char c : e.text) {
      if (isupper(static_cast<unsigned char>(c))) {
        ++with_capital;
        break;
      }
    }
  }
  EXPECT_GT(with_capital, 50);
}

TEST(GenerateDatasetTest, ConjunctionModeBalancesUnigramStatistics) {
  // In pure conjunction mode, each of the two positive topics appears in
  // positives AND negatives; only the co-occurrence differs. Verify the
  // per-document topic occurrence rates are close across classes while
  // co-occurrence separates them.
  GeneratorConfig config = TestConfig();
  config.signal_strength = 0.0;
  config.conjunction = 1.0;
  const Dataset d =
      GenerateDataset(SharedLanguage(), config, "conj", 3000, 0.5);
  const Language& lang = SharedLanguage();
  auto topic_words = [&](int topic) {
    std::unordered_set<std::string> words;
    for (int k = 0; k < Language::kTopicSize; ++k) {
      words.insert(lang.Word(lang.TopicWordId(topic, k)));
    }
    return words;
  };
  const auto words_a = topic_words(config.positive_topics[0]);
  const auto words_b = topic_words(config.positive_topics[1]);
  int64_t pos_both = 0, neg_both = 0, pos_any = 0, neg_any = 0;
  int64_t pos = 0, neg = 0;
  for (const auto& e : d.examples()) {
    bool has_a = false, has_b = false;
    for (const auto& tok : text::Tokenize(e.text)) {
      has_a |= words_a.count(tok) > 0;
      has_b |= words_b.count(tok) > 0;
    }
    if (e.label == 1) {
      ++pos;
      pos_both += has_a && has_b;
      pos_any += has_a || has_b;
    } else {
      ++neg;
      neg_both += has_a && has_b;
      neg_any += has_a || has_b;
    }
  }
  // Any-topic presence is symmetric (unigram stats balanced)...
  EXPECT_NEAR(static_cast<double>(pos_any) / pos,
              static_cast<double>(neg_any) / neg, 0.06);
  // ...but both-topics co-occurrence separates the classes sharply.
  EXPECT_GT(static_cast<double>(pos_both) / pos,
            static_cast<double>(neg_both) / neg + 0.4);
}

TEST(GenerateDatasetTest, EntityPoolSizeControlsNameRecurrence) {
  GeneratorConfig config = TestConfig();
  config.entity_signal = 1.0;
  config.signal_strength = 0.3;
  auto distinct_names = [&](int pool) {
    GeneratorConfig c = config;
    c.entity_pool_size = pool;
    const Dataset d =
        GenerateDataset(SharedLanguage(), c, "names", 400, 0.5);
    std::unordered_set<std::string> names;
    for (const auto& e : d.examples()) {
      for (const auto& tok :
           text::Tokenize(e.text, {.lowercase = false})) {
        if (isupper(static_cast<unsigned char>(tok[0]))) {
          names.insert(tok);
        }
      }
    }
    return names.size();
  };
  // A big pool yields far more distinct names (less recurrence).
  EXPECT_GT(distinct_names(5000), distinct_names(16) * 3);
}

TEST(PretrainCorpusTest, CoversManyTopicsAndIsDeterministic) {
  const auto corpus =
      GeneratePretrainCorpus(SharedLanguage(), 200, 12, 42);
  EXPECT_EQ(corpus.size(), 200u);
  const auto corpus2 =
      GeneratePretrainCorpus(SharedLanguage(), 200, 12, 42);
  EXPECT_EQ(corpus, corpus2);
  std::unordered_set<std::string> vocab;
  for (const auto& s : corpus) {
    for (auto& t : text::Tokenize(s)) vocab.insert(t);
  }
  EXPECT_GT(vocab.size(), 500u);  // broad coverage of the language
}

}  // namespace
}  // namespace semtag::data
