#include <gtest/gtest.h>

#include "data/sampling.h"

namespace semtag::data {
namespace {

Dataset MakeDataset(int n_pos, int n_neg) {
  Dataset d("s");
  for (int i = 0; i < n_pos; ++i) {
    d.Add(Example{"p" + std::to_string(i), 1, 1});
  }
  for (int i = 0; i < n_neg; ++i) {
    d.Add(Example{"n" + std::to_string(i), 0, 0});
  }
  return d;
}

TEST(SampleWithRatioTest, ExactCounts) {
  Dataset d = MakeDataset(500, 500);
  Rng rng(1);
  const Dataset s = SampleWithRatio(d, 200, 0.3, &rng);
  EXPECT_EQ(s.size(), 200u);
  EXPECT_EQ(s.PositiveCount(), 60);
}

TEST(SampleWithRatioTest, OversamplesWhenPoolTooSmall) {
  Dataset d = MakeDataset(10, 500);
  Rng rng(2);
  const Dataset s = SampleWithRatio(d, 100, 0.5, &rng);
  EXPECT_EQ(s.size(), 100u);
  EXPECT_EQ(s.PositiveCount(), 50);  // 10 positives drawn with replacement
}

TEST(SampleWithRatioTest, SweepOfRatios) {
  Dataset d = MakeDataset(400, 400);
  Rng rng(3);
  for (double r : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    const Dataset s = SampleWithRatio(d, 200, r, &rng);
    EXPECT_NEAR(s.PositiveRatio(), r, 0.01) << "ratio " << r;
  }
}

TEST(UndersampleNegativesTest, HitsTargetRatio) {
  Dataset d = MakeDataset(100, 900);
  Rng rng(4);
  const Dataset balanced = UndersampleNegatives(d, 0.5, &rng);
  EXPECT_EQ(balanced.PositiveCount(), 100);
  EXPECT_NEAR(balanced.PositiveRatio(), 0.5, 0.01);
  EXPECT_EQ(balanced.size(), 200u);
}

TEST(UndersampleNegativesTest, NoopWhenAlreadyBalanced) {
  Dataset d = MakeDataset(100, 100);
  Rng rng(5);
  const Dataset same = UndersampleNegatives(d, 0.5, &rng);
  EXPECT_EQ(same.size(), d.size());
}

TEST(OversamplePositivesTest, HitsTargetRatio) {
  Dataset d = MakeDataset(50, 450);
  Rng rng(6);
  const Dataset up = OversamplePositives(d, 0.5, &rng);
  EXPECT_NEAR(up.PositiveRatio(), 0.5, 0.01);
  EXPECT_EQ(up.size(), 900u);  // 450 negatives + 450 resampled positives
}

TEST(SamplingTest, PreservesRecordPayloads) {
  Dataset d = MakeDataset(20, 20);
  Rng rng(7);
  const Dataset s = SampleWithRatio(d, 10, 0.5, &rng);
  for (const auto& e : s.examples()) {
    EXPECT_EQ(e.text[0], e.label == 1 ? 'p' : 'n');
  }
}

}  // namespace
}  // namespace semtag::data
