#include <gtest/gtest.h>

#include "data/analysis.h"

namespace semtag::data {
namespace {

TEST(AnalysisTest, InformativeTokensHandleEdgeCases) {
  Dataset d("edge");
  d.Add(Example{"signal word here", 1, 1});
  d.Add(Example{"background word here", 0, 0});
  // min_records high enough to exclude everything.
  EXPECT_TRUE(TopInformativeTokens(d, 10, 100).empty());
  // k = 0 returns nothing.
  EXPECT_TRUE(TopInformativeTokens(d, 0, 1).empty());
}

TEST(AnalysisTest, PAndNAreDocumentRates) {
  Dataset d("rates");
  // "hot" appears twice in one positive doc: counts once.
  d.Add(Example{"hot hot day", 1, 1});
  d.Add(Example{"cold day", 1, 1});
  d.Add(Example{"cold night", 0, 0});
  d.Add(Example{"mild night", 0, 0});
  const auto tokens = TopInformativeTokens(d, 100, 1);
  for (const auto& t : tokens) {
    if (t.token == "hot") {
      EXPECT_DOUBLE_EQ(t.p, 0.5);
      EXPECT_DOUBLE_EQ(t.n, 0.0);
    }
    if (t.token == "cold") {
      EXPECT_DOUBLE_EQ(t.p, 0.5);
      EXPECT_DOUBLE_EQ(t.n, 0.5);
    }
  }
}

TEST(AnalysisTest, VocabularyGrowthOnEmptyDataset) {
  Dataset d("empty");
  const auto points = VocabularyGrowth(d, {10, 20});
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].records, 0);
  EXPECT_EQ(points[0].distinct_words, 0);
}

}  // namespace
}  // namespace semtag::data
