#include <set>

#include <gtest/gtest.h>

#include "data/specs.h"

namespace semtag::data {
namespace {

TEST(SpecsTest, ExactlyTwentyOneDatasets) {
  EXPECT_EQ(AllDatasetSpecs().size(), 21u);
}

TEST(SpecsTest, NamesMatchTable3) {
  const std::set<std::string> expected = {
      "SUGG",  "HOTEL",   "SENT",    "PARA",   "FUNNY", "HOMO",  "HETER",
      "TV",    "BOOK",    "EVAL",    "REQ",    "FACT",  "REF",   "QUOTE",
      "ARGUE", "SUPPORT", "AGAINST", "AMAZON", "YELP",  "FUNNY*", "BOOK*"};
  std::set<std::string> actual;
  for (const auto& s : AllDatasetSpecs()) actual.insert(s.name);
  EXPECT_EQ(actual, expected);
}

TEST(SpecsTest, PaperStatisticsMatchTable3) {
  const DatasetSpec book = *FindSpec("BOOK");
  EXPECT_EQ(book.paper_records, 17670000);
  EXPECT_NEAR(book.paper_positive, 0.032, 1e-9);
  EXPECT_TRUE(book.dirty);

  const DatasetSpec homo = *FindSpec("HOMO");
  EXPECT_EQ(homo.paper_records, 2250);
  EXPECT_NEAR(homo.paper_positive, 0.714, 1e-9);
  EXPECT_FALSE(homo.dirty);
}

TEST(SpecsTest, SixLargeDatasets) {
  int large = 0;
  for (const auto& s : AllDatasetSpecs()) large += IsLarge(s);
  EXPECT_EQ(large, 6);
}

TEST(SpecsTest, TenImbalancedOriginalDatasets) {
  // The paper: 10 of the 14 minority-positive datasets are < 25%.
  int low = 0;
  for (const auto& s : AllDatasetSpecs()) low += !IsHighRatio(s);
  EXPECT_EQ(low, 10);
}

TEST(SpecsTest, SuggUsesCompetitionSplit) {
  EXPECT_NEAR(FindSpec("SUGG")->train_fraction, 0.93, 1e-9);
  EXPECT_NEAR(FindSpec("HOTEL")->train_fraction, 0.80, 1e-9);
}

TEST(SpecsTest, DirtyDatasetsAreTheFourRuleLabeled) {
  std::set<std::string> dirty;
  for (const auto& s : AllDatasetSpecs()) {
    if (s.dirty) dirty.insert(s.name);
  }
  EXPECT_EQ(dirty, (std::set<std::string>{"FUNNY", "BOOK", "FUNNY*",
                                          "BOOK*"}));
  for (const auto& s : AllDatasetSpecs()) {
    EXPECT_EQ(s.dirty, s.generator.neg_contamination > 0.0) << s.name;
  }
}

TEST(SpecsTest, ScaledSizesPreserveOrdering) {
  // BOOK is the largest dataset, also after scaling.
  int max_scaled = 0;
  std::string max_name;
  for (const auto& s : AllDatasetSpecs()) {
    if (s.scaled_records > max_scaled) {
      max_scaled = s.scaled_records;
      max_name = s.name;
    }
  }
  EXPECT_EQ(max_name, "BOOK");
  // Every large dataset is scaled bigger than every small dataset.
  int min_large = 1 << 30;
  int max_small = 0;
  for (const auto& s : AllDatasetSpecs()) {
    if (IsLarge(s)) min_large = std::min(min_large, s.scaled_records);
    else max_small = std::max(max_small, s.scaled_records);
  }
  EXPECT_GT(min_large, max_small);
}

TEST(SpecsTest, FindSpecUnknownName) {
  EXPECT_FALSE(FindSpec("NOPE").ok());
}

TEST(SpecsTest, BuildDatasetHonorsSpec) {
  const DatasetSpec spec = *FindSpec("HETER");
  const Dataset d = BuildDataset(spec);
  EXPECT_EQ(static_cast<int>(d.size()), spec.scaled_records);
  EXPECT_NEAR(d.PositiveRatio(), spec.paper_positive, 0.01);
}

TEST(SpecsTest, BuildDatasetPoolScalesUp) {
  const DatasetSpec spec = *FindSpec("HETER");
  const Dataset pool = BuildDatasetPool(spec, 1000);
  EXPECT_EQ(pool.size(), 1000u);
  EXPECT_NEAR(pool.PositiveRatio(), spec.paper_positive, 0.01);
}

TEST(SpecsTest, GeneratorTopicsFitVocabularies) {
  // Construction would CHECK-fail on out-of-range topics; building the
  // sampler for every spec proves the configs are internally consistent.
  for (const auto& spec : AllDatasetSpecs()) {
    SentenceSampler sampler(&SharedLanguage(), spec.generator);
    Rng rng(1);
    EXPECT_FALSE(sampler.Sample(1, &rng).empty()) << spec.name;
  }
}

}  // namespace
}  // namespace semtag::data
