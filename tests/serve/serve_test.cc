// Serving stack (src/serve/): wire protocol framing, the CRC-sealed model
// registry with hot-swap, the dynamic-batching scheduler's edge cases
// (ISSUE 9 satellite: empty-queue deadline, cap=1 bit-identity, partial
// flush on shutdown, admission rejection, swap-mid-stream consistency),
// traffic stats, and an end-to-end socket test pinning responses
// bit-identical to offline Score().

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/csv.h"
#include "common/fault.h"
#include "common/file_io.h"
#include "common/string_util.h"
#include "data/dataset.h"
#include "data/specs.h"
#include "models/factory.h"
#include "models/simple/linear_svm.h"
#include "serve/batcher.h"
#include "serve/model_registry.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/traffic_stats.h"

namespace semtag::serve {
namespace {

// ---------------------------------------------------------------------------
// Protocol
// ---------------------------------------------------------------------------

TEST(ProtocolTest, FrameRoundTripByteAtATime) {
  std::string wire;
  AppendFrame(0x01, "hello", &wire);
  AppendFrame(0x02, "", &wire);
  AppendFrame(0x03, std::string(1000, 'x'), &wire);

  FrameReader reader;
  std::vector<std::pair<uint8_t, std::string>> frames;
  for (const char c : wire) {
    ASSERT_TRUE(reader.Feed(&c, 1));
    uint8_t tag = 0;
    std::string payload;
    while (reader.Next(&tag, &payload)) frames.emplace_back(tag, payload);
  }
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0], (std::pair<uint8_t, std::string>{0x01, "hello"}));
  EXPECT_EQ(frames[1].first, 0x02);
  EXPECT_TRUE(frames[1].second.empty());
  EXPECT_EQ(frames[2].second.size(), 1000u);
  EXPECT_FALSE(reader.violated());
}

TEST(ProtocolTest, ZeroLengthFrameIsViolation) {
  // A length prefix of 0 cannot carry the mandatory tag byte.
  const char wire[4] = {0, 0, 0, 0};
  FrameReader reader;
  EXPECT_FALSE(reader.Feed(wire, sizeof(wire)));
  EXPECT_TRUE(reader.violated());
}

TEST(ProtocolTest, OversizedFrameIsViolation) {
  // "GET " little-endian is ~0x20544547 bytes — far over kMaxFrameBytes.
  const char wire[] = "GET / HTTP/1.1\r\n";
  FrameReader reader;
  EXPECT_FALSE(reader.Feed(wire, sizeof(wire) - 1));
  EXPECT_TRUE(reader.violated());
  // The reader stays violated: later feeds never yield frames.
  std::string good;
  AppendFrame(0x01, "x", &good);
  EXPECT_FALSE(reader.Feed(good.data(), good.size()));
}

TEST(ProtocolTest, ScorePayloadRoundTrip) {
  const std::string payload = ScorePayload(0x0123456789abcdefULL, "text");
  uint64_t ticket = 0;
  std::string_view text;
  ASSERT_TRUE(ParseScorePayload(payload, &ticket, &text));
  EXPECT_EQ(ticket, 0x0123456789abcdefULL);
  EXPECT_EQ(text, "text");

  EXPECT_FALSE(ParseScorePayload("short", &ticket, &text));
}

TEST(ProtocolTest, ScoreResponseRoundTripsDoubleBits) {
  // %.17g must round-trip arbitrary doubles exactly (the bit-identity
  // contract of the wire format).
  const double values[] = {1.0 / 3.0, -0.0, 1e-300, -123456.789012345678,
                           5.0e-324};
  for (const double v : values) {
    uint64_t ticket = 0;
    uint64_t version = 0;
    double parsed = 0.0;
    ASSERT_TRUE(ParseScoreResponse(FormatScoreResponse(7, 3, v), &ticket,
                                   &version, &parsed));
    EXPECT_EQ(ticket, 7u);
    EXPECT_EQ(version, 3u);
    EXPECT_EQ(std::memcmp(&parsed, &v, sizeof(double)), 0)
        << "value " << v << " did not round-trip bit-identically";
  }
}

// ---------------------------------------------------------------------------
// Model registry
// ---------------------------------------------------------------------------

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(ModelSpecTest, WriteLoadRoundTrip) {
  ModelSpec spec;
  spec.model = "CASCADE";
  spec.dataset = "HETER";
  spec.records = 220;
  spec.seed = 7;
  spec.cascade = "SVM+CNN";
  spec.budget_pts = 1.25;
  const std::string path = TempPath("spec_roundtrip.spec");
  ASSERT_TRUE(WriteModelSpecFile(path, spec).ok());

  auto loaded = LoadModelSpecFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->model, "CASCADE");
  EXPECT_EQ(loaded->dataset, "HETER");
  EXPECT_EQ(loaded->records, 220);
  EXPECT_EQ(loaded->seed, 7u);
  EXPECT_EQ(loaded->cascade, "SVM+CNN");
  EXPECT_DOUBLE_EQ(loaded->budget_pts, 1.25);
}

TEST(ModelSpecTest, CorruptSpecIsQuarantined) {
  ModelSpec spec;
  spec.model = "SVM";
  spec.dataset = "HETER";
  const std::string path = TempPath("spec_corrupt.spec");
  ASSERT_TRUE(WriteModelSpecFile(path, spec).ok());
  // Flip a content byte under the seal.
  auto content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  std::string bytes = *content;
  bytes[bytes.find("HETER")] = 'X';
  ASSERT_TRUE(WriteFileAtomic(path, bytes).ok());

  EXPECT_FALSE(LoadModelSpecFile(path).ok());
  // Quarantine moved the poisoned file aside.
  EXPECT_FALSE(ReadFileToString(path).ok());
}

TEST(ModelSpecTest, SemanticErrorDoesNotQuarantine) {
  // A well-formed, correctly-sealed spec with a semantic problem (both
  // dataset and file) is rejected but NOT quarantined: the file is exactly
  // what its writer intended, not corrupt.
  std::string body =
      "semtag-model-spec-v1\nmodel SVM\ndataset HETER\nfile /tmp/x\n";
  body += StrFormat("crc %08x\n", Crc32(body));
  const std::string path = TempPath("spec_semantic.spec");
  ASSERT_TRUE(WriteFileAtomic(path, body).ok());

  EXPECT_FALSE(LoadModelSpecFile(path).ok());
  EXPECT_TRUE(ReadFileToString(path).ok()) << "file must not be quarantined";
}

data::Dataset TinyDataset(uint64_t seed = 5) {
  data::DatasetSpec spec = data::FindSpec("HETER").ValueOrDie();
  spec.scaled_records = 220;
  spec.generator.seed = seed;
  return data::BuildDataset(spec);
}

std::unique_ptr<models::TaggingModel> TrainedSvm(
    const data::Dataset& dataset) {
  auto model = models::CreateModelSeeded(models::ModelKind::kSvm, 1);
  EXPECT_TRUE(model->Train(dataset).ok());
  return model;
}

TEST(ModelRegistryTest, InstallAcquireAndSwapBumpVersion) {
  const data::Dataset dataset = TinyDataset();
  ModelRegistry registry;
  EXPECT_EQ(registry.version(), 0u);
  EXPECT_EQ(registry.Acquire(), nullptr);

  EXPECT_EQ(registry.Install(TrainedSvm(dataset), "svm-a"), 1u);
  EXPECT_EQ(registry.version(), 1u);
  const auto first = registry.Acquire();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->version, 1u);

  EXPECT_EQ(registry.Install(TrainedSvm(dataset), "svm-b"), 2u);
  EXPECT_EQ(registry.version(), 2u);
  // The old snapshot stays valid for in-flight batches.
  EXPECT_EQ(first->version, 1u);
  EXPECT_NE(first->model, nullptr);
}

TEST(ModelRegistryTest, SwapFromCheckpointSpecFile) {
  const data::Dataset dataset = TinyDataset();
  auto svm = TrainedSvm(dataset);
  const std::string checkpoint = TempPath("svm_checkpoint.bin");
  ASSERT_TRUE(
      static_cast<models::LinearSvm*>(svm.get())->Save(checkpoint).ok());

  ModelSpec spec;
  spec.model = "SVM";
  spec.file = checkpoint;
  const std::string path = TempPath("svm_swap.spec");
  ASSERT_TRUE(WriteModelSpecFile(path, spec).ok());

  ModelRegistry registry;
  registry.Install(TrainedSvm(dataset), "initial");
  auto version = registry.SwapFromSpecFile(path);
  ASSERT_TRUE(version.ok()) << version.status().ToString();
  EXPECT_EQ(*version, 2u);
  const auto servable = registry.Acquire();
  const std::string text = dataset[0].text;
  EXPECT_EQ(servable->model->Score(text), svm->Score(text));
}

// ---------------------------------------------------------------------------
// Swap failure paths under fault injection (common/fault.h)
// ---------------------------------------------------------------------------

/// Clears armed faults on scope exit, whatever the test asserted.
struct ScopedFaults {
  explicit ScopedFaults(const std::string& spec) {
    EXPECT_TRUE(SetFaultsFromSpec(spec).ok());
  }
  ~ScopedFaults() { ClearFaults(); }
};

TEST(SwapFaultTest, WriteFailSurfacesIoErrorAndLeavesNoSpecBehind) {
  ModelSpec spec;
  spec.model = "SVM";
  spec.dataset = "HETER";
  spec.records = 220;
  const std::string path = TempPath("fault_write.spec");
  // A prior run's success-path spec (written after the fault cleared)
  // must not masquerade as a partial write.
  std::remove(path.c_str());
  {
    ScopedFaults faults("write_fail:match=fault_write.spec");
    const Status st = WriteModelSpecFile(path, spec);
    EXPECT_FALSE(st.ok());
    EXPECT_GE(FaultTriggerCount(FaultPoint::kWriteFail), 1);
  }
  // The atomic-write protocol failed before the rename: no partial spec
  // file exists for a swapper to trip over.
  EXPECT_FALSE(ReadFileToString(path).ok());

  // With the fault cleared the identical call succeeds: nothing about the
  // failure was sticky.
  ASSERT_TRUE(WriteModelSpecFile(path, spec).ok());
  EXPECT_TRUE(LoadModelSpecFile(path).ok());
}

TEST(SwapFaultTest, ReadCorruptSwapKeepsOldModelAndQuarantines) {
  const data::Dataset dataset = TinyDataset();
  ModelRegistry registry;
  registry.Install(TrainedSvm(dataset), "initial");
  const auto before = registry.Acquire();
  const std::string text = dataset[0].text;
  const double before_score = before->model->Score(text);

  ModelSpec spec;
  spec.model = "SVM";
  spec.dataset = "HETER";
  spec.records = 220;
  const std::string path = TempPath("fault_read.spec");
  ASSERT_TRUE(WriteModelSpecFile(path, spec).ok());

  {
    // Flip a byte in the freshly read spec content: the CRC seal must
    // catch it, the swap must fail, and the old model must keep serving.
    ScopedFaults faults("read_corrupt:match=fault_read.spec");
    const auto swapped = registry.SwapFromSpecFile(path);
    EXPECT_FALSE(swapped.ok());
    EXPECT_GE(FaultTriggerCount(FaultPoint::kReadCorrupt), 1);
  }
  EXPECT_EQ(registry.version(), 1u) << "failed swap must not bump version";
  const auto after = registry.Acquire();
  EXPECT_EQ(after->model->Score(text), before_score)
      << "old model must keep serving bit-identically";

  // The poisoned file was quarantined aside, not left as a retry trap.
  EXPECT_FALSE(ReadFileToString(path).ok());
  EXPECT_TRUE(ReadFileToString(path + ".corrupt").ok())
      << "quarantine must preserve the evidence";

  // A clean rewrite swaps fine afterwards.
  ASSERT_TRUE(WriteModelSpecFile(path, spec).ok());
  const auto retried = registry.SwapFromSpecFile(path);
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_EQ(*retried, 2u);
}

// ---------------------------------------------------------------------------
// Traffic stats
// ---------------------------------------------------------------------------

TEST(TrafficStatsTest, SlidingWindowEvicts) {
  TrafficStats stats(/*window=*/4);
  // 6 records: the first two (length 100, positive) slide out.
  stats.Record(100, 0.9);
  stats.Record(100, 0.9);
  for (int i = 0; i < 4; ++i) stats.Record(10, 0.1);

  const TrafficSnapshot snapshot = stats.Snapshot();
  EXPECT_EQ(snapshot.total, 6u);
  EXPECT_EQ(snapshot.window, 4u);
  EXPECT_DOUBLE_EQ(snapshot.positive_ratio, 0.0);
  EXPECT_DOUBLE_EQ(snapshot.mean_length, 10.0);
}

TEST(TrafficStatsTest, PartialWindowAverages) {
  TrafficStats stats(/*window=*/100);
  stats.Record(10, 0.8);
  stats.Record(30, 0.2);
  const TrafficSnapshot snapshot = stats.Snapshot();
  EXPECT_EQ(snapshot.total, 2u);
  EXPECT_EQ(snapshot.window, 2u);
  EXPECT_DOUBLE_EQ(snapshot.positive_ratio, 0.5);
  EXPECT_DOUBLE_EQ(snapshot.mean_length, 20.0);
}

// ---------------------------------------------------------------------------
// Batcher edge cases
// ---------------------------------------------------------------------------

struct CollectedScores {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<ScoredRequest> results;

  ScoreCallback Collector() {
    return [this](const ScoredRequest& r) {
      std::lock_guard<std::mutex> lock(mu);
      results.push_back(r);
      cv.notify_all();
    };
  }
  bool WaitForCount(size_t n, int timeout_ms = 10000) {
    std::unique_lock<std::mutex> lock(mu);
    return cv.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                       [&] { return results.size() >= n; });
  }
};

TEST(BatcherTest, EmptyQueueDeadlineIsANonEvent) {
  const data::Dataset dataset = TinyDataset();
  ModelRegistry registry;
  registry.Install(TrainedSvm(dataset), "svm");
  BatchingOptions options;
  options.deadline_us = 100;  // would fire constantly if armed while idle
  Batcher batcher(&registry, nullptr, options);
  batcher.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(batcher.BatchCount(), 0u);
  EXPECT_EQ(batcher.QueueDepth(), 0u);
  batcher.Stop();
}

TEST(BatcherTest, CapOneIsBitIdenticalToScore) {
  const data::Dataset dataset = TinyDataset();
  ModelRegistry registry;
  registry.Install(TrainedSvm(dataset), "svm");
  const auto servable = registry.Acquire();

  BatchingOptions options;
  options.batch_cap = 1;
  Batcher batcher(&registry, nullptr, options);
  batcher.Start();
  CollectedScores collected;
  const int n = 16;
  std::vector<std::string> texts;
  for (int i = 0; i < n; ++i) texts.push_back(dataset[i].text);
  for (const std::string& text : texts) {
    ASSERT_TRUE(batcher.Submit(text, collected.Collector()));
  }
  ASSERT_TRUE(collected.WaitForCount(n));
  batcher.Stop();

  // cap=1 batches are singletons: each response must carry exactly
  // Score(text) — the offline answer — bit for bit. Responses may complete
  // in order here (single submitter), so index-match.
  for (int i = 0; i < n; ++i) {
    const double offline = servable->model->Score(texts[i]);
    EXPECT_EQ(collected.results[i].score, offline) << "text " << i;
  }
}

TEST(BatcherTest, StopFlushesPartialBatch) {
  const data::Dataset dataset = TinyDataset();
  ModelRegistry registry;
  registry.Install(TrainedSvm(dataset), "svm");
  BatchingOptions options;
  options.batch_cap = 32;
  options.deadline_us = 10 * 1000 * 1000;  // would wait 10s for a full batch
  Batcher batcher(&registry, nullptr, options);
  batcher.Start();
  CollectedScores collected;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(batcher.Submit(dataset[i].text, collected.Collector()));
  }
  // Stop must flush the 3-request partial batch immediately, not wait out
  // the deadline: Stop() returning implies the callbacks ran.
  batcher.Stop();
  EXPECT_EQ(collected.results.size(), 3u);
  EXPECT_GE(batcher.BatchCount(), 1u);
}

TEST(BatcherTest, AdmissionControlShedsWhenFull) {
  const data::Dataset dataset = TinyDataset();
  ModelRegistry registry;
  registry.Install(TrainedSvm(dataset), "svm");
  BatchingOptions options;
  options.queue_cap = 2;
  options.batch_cap = 32;
  options.deadline_us = 10 * 1000 * 1000;
  Batcher batcher(&registry, nullptr, options);
  // Not started: nothing drains the queue, so the bound is exact.
  CollectedScores collected;
  EXPECT_TRUE(batcher.Submit(dataset[0].text, collected.Collector()));
  EXPECT_TRUE(batcher.Submit(dataset[1].text, collected.Collector()));
  EXPECT_FALSE(batcher.Submit(dataset[2].text, collected.Collector()));
  EXPECT_EQ(batcher.ShedCount(), 1u);
  // Draining answers the two admitted requests (never the shed one).
  batcher.Start();
  batcher.Stop();
  EXPECT_EQ(collected.results.size(), 2u);
}

TEST(BatcherTest, HotSwapMidStreamIsPerBatchConsistent) {
  const data::Dataset dataset = TinyDataset();
  ModelRegistry registry;
  auto svm_a = TrainedSvm(dataset);
  auto lr = models::CreateModelSeeded(models::ModelKind::kLr, 1);
  ASSERT_TRUE(lr->Train(dataset).ok());
  const models::TaggingModel* model_v1 = svm_a.get();
  const models::TaggingModel* model_v2 = lr.get();
  // Keep scoring copies alive; the registry owns its own instances.
  auto svm_for_registry = TrainedSvm(dataset);
  registry.Install(std::move(svm_for_registry), "svm");

  BatchingOptions options;
  options.batch_cap = 4;
  options.deadline_us = 500;
  Batcher batcher(&registry, nullptr, options);
  batcher.Start();

  CollectedScores collected;
  std::vector<std::string> texts;
  const int n = 64;
  for (int i = 0; i < n; ++i) {
    texts.push_back(dataset[i % dataset.size()].text);
  }
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(batcher.Submit(texts[i], collected.Collector()));
    if (i == n / 2) {
      auto replacement =
          models::CreateModelSeeded(models::ModelKind::kLr, 1);
      ASSERT_TRUE(replacement->Train(dataset).ok());
      registry.Install(std::move(replacement), "lr");
    }
  }
  ASSERT_TRUE(collected.WaitForCount(n));
  batcher.Stop();

  // Every response must be self-consistent: the score it carries is the
  // one the model version it names produces. A batch split across the
  // swap would break this.
  int v1 = 0;
  int v2 = 0;
  for (int i = 0; i < n; ++i) {
    const ScoredRequest& r = collected.results[i];
    if (r.model_version == 1) {
      EXPECT_EQ(r.score, model_v1->Score(texts[i])) << "request " << i;
      ++v1;
    } else {
      ASSERT_EQ(r.model_version, 2u);
      EXPECT_EQ(r.score, model_v2->Score(texts[i])) << "request " << i;
      ++v2;
    }
  }
  EXPECT_GT(v1, 0) << "swap landed before any v1 batch scored";
  EXPECT_GT(v2, 0) << "swap never became visible";
}

// ---------------------------------------------------------------------------
// End-to-end over a real socket
// ---------------------------------------------------------------------------

class TestClient {
 public:
  bool Connect(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    (void)::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)) == 0;
  }
  ~TestClient() {
    if (fd_ >= 0) (void)::close(fd_);
  }

  bool Send(uint8_t tag, std::string_view payload) {
    std::string frame;
    AppendFrame(tag, payload, &frame);
    size_t off = 0;
    while (off < frame.size()) {
      const ssize_t n =
          ::write(fd_, frame.data() + off, frame.size() - off);
      if (n <= 0) return false;
      off += static_cast<size_t>(n);
    }
    return true;
  }

  /// Blocking read of the next frame (10s timeout).
  bool ReadFrame(uint8_t* tag, std::string* payload) {
    for (int spins = 0; spins < 1000; ++spins) {
      if (reader_.Next(tag, payload)) return true;
      struct pollfd pfd;
      pfd.fd = fd_;
      pfd.events = POLLIN;
      pfd.revents = 0;
      if (::poll(&pfd, 1, 10) <= 0) continue;
      char buf[4096];
      const ssize_t n = ::read(fd_, buf, sizeof(buf));
      if (n <= 0) return false;
      if (!reader_.Feed(buf, static_cast<size_t>(n))) return false;
    }
    return false;
  }

 private:
  int fd_ = -1;
  FrameReader reader_;
};

TEST(ServerTest, EndToEndScoresBitIdenticalToOffline) {
  const data::Dataset dataset = TinyDataset();
  ModelRegistry registry;
  registry.Install(TrainedSvm(dataset), "svm");
  const auto servable = registry.Acquire();

  ServerOptions options;
  options.batching.batch_cap = 1;  // singleton batches == offline Score
  Server server(&registry, options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);

  TestClient client;
  ASSERT_TRUE(client.Connect(server.port()));

  // Ping.
  ASSERT_TRUE(client.Send(static_cast<uint8_t>(Opcode::kPing), ""));
  uint8_t tag = 0;
  std::string payload;
  ASSERT_TRUE(client.ReadFrame(&tag, &payload));
  EXPECT_EQ(tag, static_cast<uint8_t>(StatusCode::kOk));
  EXPECT_EQ(payload, "pong");

  // Pipelined scores: responses may arrive out of order; correlate by
  // ticket and pin every score to the offline answer bit for bit.
  const int n = 24;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(client.Send(static_cast<uint8_t>(Opcode::kScore),
                            ScorePayload(100 + i, dataset[i].text)));
  }
  int got = 0;
  while (got < n) {
    ASSERT_TRUE(client.ReadFrame(&tag, &payload)) << "after " << got;
    ASSERT_EQ(tag, static_cast<uint8_t>(StatusCode::kOk));
    uint64_t ticket = 0;
    uint64_t version = 0;
    double score = 0.0;
    ASSERT_TRUE(ParseScoreResponse(payload, &ticket, &version, &score));
    ASSERT_GE(ticket, 100u);
    ASSERT_LT(ticket, 100u + n);
    EXPECT_EQ(version, 1u);
    const std::string& text = dataset[ticket - 100].text;
    EXPECT_EQ(score, servable->model->Score(text))
        << "ticket " << ticket << " not bit-identical to offline";
    ++got;
  }

  // Stats op mentions the live model version.
  ASSERT_TRUE(client.Send(static_cast<uint8_t>(Opcode::kStats), ""));
  ASSERT_TRUE(client.ReadFrame(&tag, &payload));
  EXPECT_EQ(tag, static_cast<uint8_t>(StatusCode::kOk));
  EXPECT_NE(payload.find("\"version\": 1"), std::string::npos) << payload;

  server.Stop();
  EXPECT_FALSE(server.running());
  const ServerCounters counters = server.counters();
  EXPECT_EQ(counters.requests, static_cast<uint64_t>(n));
  EXPECT_EQ(counters.protocol_errors, 0u);
  EXPECT_EQ(counters.shed, 0u);
}

TEST(ServerTest, HotSwapOverTheWire) {
  const data::Dataset dataset = TinyDataset();
  ModelRegistry registry;
  registry.Install(TrainedSvm(dataset), "svm");

  // Replacement: an SVM checkpoint behind a sealed spec file.
  auto replacement = TrainedSvm(dataset);
  const std::string checkpoint = TempPath("e2e_swap_checkpoint.bin");
  ASSERT_TRUE(static_cast<models::LinearSvm*>(replacement.get())
                  ->Save(checkpoint)
                  .ok());
  ModelSpec spec;
  spec.model = "SVM";
  spec.file = checkpoint;
  const std::string spec_path = TempPath("e2e_swap.spec");
  ASSERT_TRUE(WriteModelSpecFile(spec_path, spec).ok());

  Server server(&registry, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  TestClient client;
  ASSERT_TRUE(client.Connect(server.port()));

  ASSERT_TRUE(client.Send(static_cast<uint8_t>(Opcode::kSwap), spec_path));
  uint8_t tag = 0;
  std::string payload;
  ASSERT_TRUE(client.ReadFrame(&tag, &payload));
  EXPECT_EQ(tag, static_cast<uint8_t>(StatusCode::kOk));
  EXPECT_EQ(payload, "v2");

  // Requests scored after the swap response carry the new version.
  ASSERT_TRUE(client.Send(static_cast<uint8_t>(Opcode::kScore),
                          ScorePayload(1, dataset[0].text)));
  ASSERT_TRUE(client.ReadFrame(&tag, &payload));
  ASSERT_EQ(tag, static_cast<uint8_t>(StatusCode::kOk));
  uint64_t ticket = 0;
  uint64_t version = 0;
  double score = 0.0;
  ASSERT_TRUE(ParseScoreResponse(payload, &ticket, &version, &score));
  EXPECT_EQ(version, 2u);

  // A bad path reports kError (and never kills the daemon).
  ASSERT_TRUE(client.Send(static_cast<uint8_t>(Opcode::kSwap),
                          TempPath("does_not_exist.spec")));
  ASSERT_TRUE(client.ReadFrame(&tag, &payload));
  EXPECT_EQ(tag, static_cast<uint8_t>(StatusCode::kError));

  server.Stop();
  const ServerCounters counters = server.counters();
  EXPECT_EQ(counters.swaps_ok, 1u);
  EXPECT_EQ(counters.swaps_failed, 1u);
}

TEST(ServerTest, SwapUnderReadCorruptFaultKeepsServingOldModel) {
  const data::Dataset dataset = TinyDataset();
  ModelRegistry registry;
  registry.Install(TrainedSvm(dataset), "svm");
  const auto servable = registry.Acquire();

  auto replacement = TrainedSvm(dataset);
  const std::string checkpoint = TempPath("e2e_fault_checkpoint.bin");
  ASSERT_TRUE(static_cast<models::LinearSvm*>(replacement.get())
                  ->Save(checkpoint)
                  .ok());
  ModelSpec spec;
  spec.model = "SVM";
  spec.file = checkpoint;
  const std::string spec_path = TempPath("e2e_fault_swap.spec");
  ASSERT_TRUE(WriteModelSpecFile(spec_path, spec).ok());

  ServerOptions options;
  options.batching.batch_cap = 1;
  Server server(&registry, options);
  ASSERT_TRUE(server.Start().ok());
  TestClient client;
  ASSERT_TRUE(client.Connect(server.port()));

  uint8_t tag = 0;
  std::string payload;
  {
    // The daemon reads a bit-flipped spec: kSwap must answer kError, not
    // crash, and scoring must continue on the old model/version.
    ScopedFaults faults("read_corrupt:match=e2e_fault_swap.spec");
    ASSERT_TRUE(
        client.Send(static_cast<uint8_t>(Opcode::kSwap), spec_path));
    ASSERT_TRUE(client.ReadFrame(&tag, &payload));
    EXPECT_EQ(tag, static_cast<uint8_t>(StatusCode::kError));
  }

  ASSERT_TRUE(client.Send(static_cast<uint8_t>(Opcode::kScore),
                          ScorePayload(9, dataset[0].text)));
  ASSERT_TRUE(client.ReadFrame(&tag, &payload));
  ASSERT_EQ(tag, static_cast<uint8_t>(StatusCode::kOk));
  uint64_t ticket = 0;
  uint64_t version = 0;
  double score = 0.0;
  ASSERT_TRUE(ParseScoreResponse(payload, &ticket, &version, &score));
  EXPECT_EQ(version, 1u) << "failed swap must leave the version alone";
  EXPECT_EQ(score, servable->model->Score(dataset[0].text));

  server.Stop();
  const ServerCounters counters = server.counters();
  EXPECT_EQ(counters.swaps_ok, 0u);
  EXPECT_EQ(counters.swaps_failed, 1u);
  // The poisoned spec was quarantined by the failed swap.
  EXPECT_FALSE(ReadFileToString(spec_path).ok());
  EXPECT_TRUE(ReadFileToString(spec_path + ".corrupt").ok());
}

TEST(ServerTest, ShedResponseWhenQueueFull) {
  const data::Dataset dataset = TinyDataset();
  ModelRegistry registry;
  registry.Install(TrainedSvm(dataset), "svm");

  ServerOptions options;
  options.batching.queue_cap = 1;
  options.batching.batch_cap = 1;
  options.batching.deadline_us = 0;
  Server server(&registry, options);
  ASSERT_TRUE(server.Start().ok());
  TestClient client;
  ASSERT_TRUE(client.Connect(server.port()));

  // Flood far past the queue bound; with queue_cap=1 some requests MUST
  // shed, and every request gets exactly one response either way.
  const int n = 64;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(client.Send(static_cast<uint8_t>(Opcode::kScore),
                            ScorePayload(i, dataset[0].text)));
  }
  int ok = 0;
  int shed = 0;
  for (int i = 0; i < n; ++i) {
    uint8_t tag = 0;
    std::string payload;
    ASSERT_TRUE(client.ReadFrame(&tag, &payload)) << "after " << i;
    if (tag == static_cast<uint8_t>(StatusCode::kOk)) {
      ++ok;
    } else {
      ASSERT_EQ(tag, static_cast<uint8_t>(StatusCode::kShed));
      ++shed;
    }
  }
  EXPECT_EQ(ok + shed, n);
  EXPECT_GT(ok, 0);
  EXPECT_GT(shed, 0) << "queue_cap=1 under a 64-deep flood must shed";
  server.Stop();
}

TEST(ServerTest, ProtocolViolationDropsConnectionOnly) {
  const data::Dataset dataset = TinyDataset();
  ModelRegistry registry;
  registry.Install(TrainedSvm(dataset), "svm");
  Server server(&registry, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  {
    TestClient bad;
    ASSERT_TRUE(bad.Connect(server.port()));
    ASSERT_TRUE(bad.Send(0x7f, "junk-opcode"));
    uint8_t tag = 0;
    std::string payload;
    EXPECT_FALSE(bad.ReadFrame(&tag, &payload));  // connection dropped
  }
  // The server survives and keeps serving new connections.
  TestClient good;
  ASSERT_TRUE(good.Connect(server.port()));
  ASSERT_TRUE(good.Send(static_cast<uint8_t>(Opcode::kPing), ""));
  uint8_t tag = 0;
  std::string payload;
  ASSERT_TRUE(good.ReadFrame(&tag, &payload));
  EXPECT_EQ(payload, "pong");

  server.Stop();
  EXPECT_GE(server.counters().protocol_errors, 1u);
}

}  // namespace
}  // namespace semtag::serve
