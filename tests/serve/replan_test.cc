// Online re-planning loop (serve/replanner.h) and its deterministic drift
// harness: logical-epoch TrafficStats rotation, the streaming cleanliness
// proxy, the seeded drift-scenario generator (data/drift.h), detector
// firing exactly at a scripted boundary, hysteresis suppressing
// oscillating profiles, mid-stream hot-swaps that never split a batch,
// and the whole loop bit-identical across 1/4/16 threads and under the
// SEMTAG_QUANT / SEMTAG_DEEP_BATCH lanes.

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/thread_pool.h"
#include "core/cascade.h"
#include "data/dataset.h"
#include "data/drift.h"
#include "data/specs.h"
#include "serve/batcher.h"
#include "serve/model_registry.h"
#include "serve/protocol.h"
#include "serve/replanner.h"
#include "serve/server.h"
#include "serve/traffic_stats.h"

namespace semtag::serve {
namespace {

/// Restores (or clears) one environment variable on scope exit.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value != nullptr) {
      ::setenv(name, value, /*overwrite=*/1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), /*overwrite=*/1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  bool had_old_ = false;
  std::string old_;
};

// ---------------------------------------------------------------------------
// TrafficStats logical epochs + cleanliness proxy
// ---------------------------------------------------------------------------

TEST(TrafficEpochTest, ExplicitRotationIsWallClockFree) {
  TrafficStats stats(/*window=*/64, /*epoch_records=*/0, /*epoch_window=*/4);
  EXPECT_FALSE(stats.AdvanceEpoch()) << "empty epoch must not seal";

  stats.Record(std::string_view("alpha beta gamma"), 0.9);
  stats.Record(std::string_view("delta epsilon"), 0.1);
  EXPECT_EQ(stats.Profile().total_epochs, 0u) << "no auto-seal at records=0";
  EXPECT_TRUE(stats.AdvanceEpoch());
  EXPECT_FALSE(stats.AdvanceEpoch()) << "double-advance must be a no-op";

  const TrafficProfile profile = stats.Profile();
  EXPECT_EQ(profile.total_epochs, 1u);
  EXPECT_EQ(profile.epochs, 1u);
  EXPECT_EQ(profile.count, 2u);
  EXPECT_DOUBLE_EQ(profile.positive_ratio, 0.5);
}

TEST(TrafficEpochTest, CountBasedAutoSealRotatesWindow) {
  TrafficStats stats(/*window=*/64, /*epoch_records=*/2, /*epoch_window=*/2);
  for (int i = 0; i < 10; ++i) {
    stats.Record(std::string_view("one two three"), 0.5);
  }
  const TrafficProfile profile = stats.Profile();
  EXPECT_EQ(profile.total_epochs, 5u);
  EXPECT_EQ(profile.epochs, 2u) << "window keeps only the last 2 epochs";
  EXPECT_EQ(profile.count, 4u);
  // Legacy snapshot is untouched by epoch rotation.
  EXPECT_EQ(stats.Snapshot().total, 10u);
}

TEST(TrafficEpochTest, CleanlinessProxySeparatesCleanFromDriftedTraffic) {
  const data::DriftScenario scenario = data::CleanToDirtyScenario(
      /*records_per_segment=*/160, /*seed=*/11);
  const std::vector<data::DriftRecord> stream =
      data::GenerateDriftStream(scenario);
  ASSERT_EQ(stream.size(), 320u);

  // Reference = the clean segment's own vocabulary (stands in for the
  // served model's training corpus).
  std::vector<std::string> reference;
  for (int i = 0; i < 160; ++i) reference.push_back(stream[i].text);

  TrafficStats stats(/*window=*/64, /*epoch_records=*/0, /*epoch_window=*/1);
  stats.SeedReferenceFromTexts(reference);

  for (int i = 0; i < 160; ++i) {
    stats.Record(std::string_view(stream[i].text), 0.5);
  }
  ASSERT_TRUE(stats.AdvanceEpoch());
  const TrafficProfile clean = stats.Profile();

  for (int i = 160; i < 320; ++i) {
    stats.Record(std::string_view(stream[i].text), 0.5);
  }
  ASSERT_TRUE(stats.AdvanceEpoch());
  const TrafficProfile dirty = stats.Profile();

  // The clean phase re-draws the training distribution: near-zero OOV.
  // The drifted phase (entity soup + rotated topics) must be clearly
  // separated — this 4x gap is what the detector thresholds ride on.
  EXPECT_LT(clean.dirtiness, 0.15) << "clean=" << clean.dirtiness;
  EXPECT_GT(dirty.dirtiness, 0.30) << "dirty=" << dirty.dirtiness;
  EXPECT_GT(dirty.dirtiness, 4.0 * std::max(clean.dirtiness, 0.01));
  EXPECT_GT(dirty.oov_rate, clean.oov_rate);
  EXPECT_GT(dirty.vocab_churn, clean.vocab_churn);
}

TEST(TrafficEpochTest, ProfileIsBitIdenticalForTheSameRecordSequence) {
  const std::vector<data::DriftRecord> stream =
      data::GenerateDriftStream(data::CleanToDirtyScenario(64, 3));
  const auto run = [&stream] {
    TrafficStats stats(/*window=*/32, /*epoch_records=*/16,
                       /*epoch_window=*/4);
    for (const auto& record : stream) {
      stats.Record(std::string_view(record.text),
                   record.label == 1 ? 0.9 : 0.1);
    }
    return stats.Profile();
  };
  const TrafficProfile a = run();
  const TrafficProfile b = run();
  EXPECT_EQ(a.total_epochs, b.total_epochs);
  EXPECT_EQ(a.vocab_size, b.vocab_size);
  // Exact double equality: the proxy must be a pure function of the
  // record sequence.
  EXPECT_EQ(a.oov_rate, b.oov_rate);
  EXPECT_EQ(a.vocab_churn, b.vocab_churn);
  EXPECT_EQ(a.token_entropy, b.token_entropy);
  EXPECT_EQ(a.dirtiness, b.dirtiness);
}

// ---------------------------------------------------------------------------
// Drift-scenario generator
// ---------------------------------------------------------------------------

TEST(DriftStreamTest, StreamIsDeterministicAcrossCalls) {
  const data::DriftScenario scenario = data::CleanToDirtyScenario(48, 9);
  const auto a = data::GenerateDriftStream(scenario);
  const auto b = data::GenerateDriftStream(scenario);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].text, b[i].text) << "record " << i;
    EXPECT_EQ(a[i].label, b[i].label);
    EXPECT_EQ(a[i].segment, b[i].segment);
  }
}

TEST(DriftStreamTest, SegmentsDrawIndependentStreams) {
  // Editing a later segment must not perturb an earlier one's bytes.
  data::DriftScenario base = data::CleanToDirtyScenario(32, 5);
  data::DriftScenario edited = base;
  edited.segments[1].entity_rate = 0.9;
  edited.segments[1].vocab_shift = 7;
  const auto a = data::GenerateDriftStream(base);
  const auto b = data::GenerateDriftStream(edited);
  for (int i = 0; i < 32; ++i) {
    ASSERT_EQ(a[i].text, b[i].text) << "clean segment changed at " << i;
  }
  // And the edit did change the dirty segment.
  bool any_diff = false;
  for (size_t i = 32; i < a.size(); ++i) any_diff |= a[i].text != b[i].text;
  EXPECT_TRUE(any_diff);
}

TEST(DriftStreamTest, SegmentsHonorScheduleOrderAndRatio) {
  data::DriftScenario scenario;
  scenario.base_dataset = "HETER";
  scenario.seed = 21;
  data::DriftSegment a;
  a.label = "a";
  a.records = 40;
  a.positive_ratio = 0.5;
  data::DriftSegment b = a;
  b.label = "b";
  b.records = 20;
  b.positive_ratio = 0.25;
  scenario.segments = {a, b};
  const auto stream = data::GenerateDriftStream(scenario);
  ASSERT_EQ(stream.size(), 60u);
  int positives_a = 0, positives_b = 0;
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(stream[i].segment, 0);
    positives_a += stream[i].label;
  }
  for (int i = 40; i < 60; ++i) {
    EXPECT_EQ(stream[i].segment, 1);
    positives_b += stream[i].label;
  }
  EXPECT_EQ(positives_a, 20);  // max(1, lround(40*0.5))
  EXPECT_EQ(positives_b, 5);   // max(1, lround(20*0.25))
}

// ---------------------------------------------------------------------------
// Detector: dry-run replanner over scripted profiles
// ---------------------------------------------------------------------------

/// A profile with everything the detector reads: dirtiness plus the live
/// fallbacks (total/ratio are pinned in these tests, so only dirtiness
/// drives the decision).
TrafficProfile ScriptedProfile(double dirtiness, uint64_t epoch) {
  TrafficProfile profile;
  profile.total = 1000 * (epoch + 1);
  profile.total_epochs = epoch + 1;
  profile.epochs = 1;
  profile.count = 1000;
  profile.positive_ratio = 0.5;
  profile.dirtiness = dirtiness;
  profile.oov_rate = dirtiness / 2.0;
  return profile;
}

/// Detector options pinned to the FUNNY-scale heat-map cell
/// (4.75M records, ratio 0.3) where clean wants the SVM+CNN cascade and
/// dirty wants simple-only — the scripted boundary all detector tests
/// cross.
ReplanOptions DetectorOptions() {
  ReplanOptions options;
  options.enabled = true;
  options.dwell_epochs = 3;
  options.margin_pts = 0.25;
  options.dirty_threshold = 0.25;
  options.dirty_band = 0.10;
  options.profile_records = 4750000;
  options.profile_ratio = 0.3;
  options.cascade.simple = models::ModelKind::kSvm;
  options.cascade.deep = models::ModelKind::kCnn;
  options.cascade.budget_pts = 1.0;
  return options;
}

core::CascadePlan CascadeIncumbent() {
  core::CascadePlan plan;
  plan.simple = models::ModelKind::kSvm;
  plan.deep = models::ModelKind::kCnn;
  plan.simple_only = false;
  return plan;
}

TEST(ReplanDetectorTest, PlannerCrossesCellOnCleanliness) {
  // Pin the planner geometry the detector tests ride on: at the FUNNY
  // cell, clean keeps the cascade and dirty degenerates to simple-only.
  const ReplanOptions options = DetectorOptions();
  core::DatasetProfile dp;
  dp.num_records = options.profile_records;
  dp.positive_ratio = options.profile_ratio;
  dp.labels_clean = true;
  const auto clean_plan =
      core::PlanCascade(dp, core::PaperHeatMap(), options.cascade);
  EXPECT_FALSE(clean_plan.simple_only)
      << clean_plan.rationale << " (svm " << clean_plan.expected_simple_f1
      << " bert " << clean_plan.expected_deep_f1 << ")";
  EXPECT_EQ(core::CascadePairName(clean_plan), "SVM+CNN");

  dp.labels_clean = false;
  const auto dirty_plan =
      core::PlanCascade(dp, core::PaperHeatMap(), options.cascade);
  EXPECT_TRUE(dirty_plan.simple_only)
      << dirty_plan.rationale << " (svm " << dirty_plan.expected_simple_f1
      << " bert " << dirty_plan.expected_deep_f1 << ")";
  EXPECT_EQ(core::CascadePairName(dirty_plan), "simple");
}

TEST(ReplanDetectorTest, FiresExactlyAtTheScriptedBoundary) {
  Replanner replanner(/*registry=*/nullptr, /*stats=*/nullptr,
                      DetectorOptions());
  replanner.SetIncumbent(CascadeIncumbent());

  uint64_t epoch = 0;
  // Five clean epochs: no candidate, no swap.
  for (int i = 0; i < 5; ++i) {
    replanner.Step(ScriptedProfile(0.05, epoch++));
    const ReplanState state = replanner.state();
    EXPECT_EQ(state.swaps, 0u) << "clean epoch " << i;
    EXPECT_EQ(state.dwell, 0);
    EXPECT_FALSE(state.dirty);
  }
  // The scripted boundary: traffic turns dirty. The swap must land on
  // exactly the dwell_epochs-th consecutive dirty epoch — not before,
  // not after.
  for (int i = 1; i <= 3; ++i) {
    replanner.Step(ScriptedProfile(0.60, epoch++));
    const ReplanState state = replanner.state();
    EXPECT_TRUE(state.dirty);
    if (i < 3) {
      EXPECT_EQ(state.swaps, 0u) << "dirty epoch " << i << " (dwell "
                                 << state.dwell << ")";
      EXPECT_EQ(state.dwell, i);
      EXPECT_EQ(state.candidate, "simple");
    } else {
      EXPECT_EQ(state.swaps, 1u) << "swap must fire at dwell epoch 3";
      EXPECT_EQ(state.incumbent, "simple");
    }
  }
  // Stable dirty regime afterwards: the new incumbent holds, zero flaps.
  for (int i = 0; i < 10; ++i) {
    replanner.Step(ScriptedProfile(0.60, epoch++));
  }
  const ReplanState state = replanner.state();
  EXPECT_EQ(state.swaps, 1u);
  EXPECT_EQ(state.incumbent, "simple");
  EXPECT_EQ(state.epochs, 18u);
}

TEST(ReplanDetectorTest, HysteresisSuppressesAnOscillatingProfile) {
  // A profile flapping clean/dirty every epoch: with dwell=3 the
  // candidate never accumulates, so the pair NEVER swaps.
  Replanner replanner(nullptr, nullptr, DetectorOptions());
  replanner.SetIncumbent(CascadeIncumbent());
  uint64_t epoch = 0;
  for (int i = 0; i < 40; ++i) {
    replanner.Step(ScriptedProfile(i % 2 == 0 ? 0.60 : 0.05, epoch++));
  }
  const ReplanState state = replanner.state();
  EXPECT_EQ(state.swaps, 0u) << "oscillation must be suppressed";
  EXPECT_LE(state.dwell, 1);

  // Control: dwell=1 (no hysteresis) flaps on the same schedule.
  ReplanOptions no_dwell = DetectorOptions();
  no_dwell.dwell_epochs = 1;
  Replanner flappy(nullptr, nullptr, no_dwell);
  flappy.SetIncumbent(CascadeIncumbent());
  epoch = 0;
  for (int i = 0; i < 40; ++i) {
    flappy.Step(ScriptedProfile(i % 2 == 0 ? 0.60 : 0.05, epoch++));
  }
  EXPECT_GE(flappy.state().swaps, 2u)
      << "without dwell the same schedule must flap — otherwise the "
         "suppression assertion above is vacuous";
}

TEST(ReplanDetectorTest, DirtyBandHoldsStateInsideTheDeadZone) {
  // Dirtiness hovering INSIDE the band (threshold 0.25 +/- 0.10) must
  // never flip the cleanliness state in either direction.
  Replanner replanner(nullptr, nullptr, DetectorOptions());
  replanner.SetIncumbent(CascadeIncumbent());
  uint64_t epoch = 0;
  for (int i = 0; i < 12; ++i) {
    replanner.Step(ScriptedProfile(i % 2 == 0 ? 0.30 : 0.20, epoch++));
    EXPECT_FALSE(replanner.state().dirty) << "epoch " << i;
  }
  EXPECT_EQ(replanner.state().swaps, 0u);

  // Once dirty, the same hovering holds dirty.
  for (int i = 0; i < 3; ++i) {
    replanner.Step(ScriptedProfile(0.60, epoch++));
  }
  ASSERT_TRUE(replanner.state().dirty);
  for (int i = 0; i < 12; ++i) {
    replanner.Step(ScriptedProfile(i % 2 == 0 ? 0.30 : 0.20, epoch++));
    EXPECT_TRUE(replanner.state().dirty) << "epoch " << i;
  }
}

TEST(ReplanDetectorTest, MarginBiasHoldsIncumbentAtTheCellEdge) {
  // The YELP-scale cell (560K, 0.5, clean) sits just past the simple-only
  // edge: the unbiased planner degenerates, but an incumbent cascade with
  // a wide margin holds on — the margin half of the hysteresis.
  core::DatasetProfile dp;
  dp.num_records = 560000;
  dp.positive_ratio = 0.5;
  dp.labels_clean = true;
  core::CascadeOptions cascade;
  cascade.simple = models::ModelKind::kSvm;
  cascade.deep = models::ModelKind::kCnn;
  const auto unbiased =
      core::PlanCascade(dp, core::PaperHeatMap(), cascade);
  ASSERT_TRUE(unbiased.simple_only)
      << "cell moved: " << unbiased.rationale;

  ReplanOptions options = DetectorOptions();
  options.profile_records = 560000;
  options.profile_ratio = 0.5;
  options.cascade = cascade;
  options.margin_pts = 2.0;  // wider than the cell's ~0.5-pt edge
  Replanner held(nullptr, nullptr, options);
  held.SetIncumbent(CascadeIncumbent());
  for (uint64_t epoch = 0; epoch < 10; ++epoch) {
    held.Step(ScriptedProfile(0.05, epoch));
  }
  EXPECT_EQ(held.state().swaps, 0u) << "margin must hold the incumbent";
  EXPECT_EQ(held.state().incumbent, "SVM+CNN");

  // Zero margin on the same schedule swaps to simple-only: the margin is
  // what did the holding.
  options.margin_pts = 0.0;
  Replanner swapped(nullptr, nullptr, options);
  swapped.SetIncumbent(CascadeIncumbent());
  for (uint64_t epoch = 0; epoch < 10; ++epoch) {
    swapped.Step(ScriptedProfile(0.05, epoch));
  }
  EXPECT_EQ(swapped.state().swaps, 1u);
  EXPECT_EQ(swapped.state().incumbent, "simple");
}

// ---------------------------------------------------------------------------
// Closed loop: drift stream -> batcher -> detector -> hot-swap
// ---------------------------------------------------------------------------

struct CollectedScores {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<ScoredRequest> results;

  ScoreCallback Collector() {
    return [this](const ScoredRequest& r) {
      std::lock_guard<std::mutex> lock(mu);
      results.push_back(r);
      cv.notify_all();
    };
  }
  bool WaitForCount(size_t n, int timeout_ms = 120000) {
    std::unique_lock<std::mutex> lock(mu);
    return cv.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                       [&] { return results.size() >= n; });
  }
};

constexpr int kWave = 32;          // records per wave == batch cap
constexpr int kSegmentWaves = 4;   // waves per drift segment
constexpr int kRunRecords = 2 * kSegmentWaves * kWave;

ModelSpec RunSpec(const std::string& cascade) {
  ModelSpec spec;
  spec.model = "CASCADE";
  spec.dataset = "HETER";
  spec.records = 140;
  spec.seed = 1;
  spec.cascade = cascade;
  spec.budget_pts = 1.0;
  return spec;
}

std::vector<std::string> TrainingTexts() {
  data::DatasetSpec spec = data::FindSpec("HETER").ValueOrDie();
  spec.scaled_records = 140;
  data::Dataset dataset = data::BuildDataset(spec);
  auto [train, test] = dataset.Split(spec.train_fraction);
  return train.Texts();
}

struct DriftRunResult {
  std::vector<uint64_t> versions;  // per request, submission order
  std::vector<double> scores;      // per request, submission order
  std::vector<int> wave_of;        // wave index per request
  uint64_t swaps = 0;
  uint64_t failures = 0;
  std::string final_pair;
};

/// Runs the canonical clean->dirty schedule through a real batcher +
/// synchronous replanner at `threads` pool threads, one 32-record wave at
/// a time (each wave is exactly one batch and seals exactly one epoch).
DriftRunResult RunDriftLoop(int threads) {
  SetGlobalPoolThreads(threads);
  const std::vector<data::DriftRecord> stream =
      data::GenerateDriftStream(data::CleanToDirtyScenario(
          /*records_per_segment=*/kSegmentWaves * kWave, /*seed=*/7));
  EXPECT_EQ(stream.size(), static_cast<size_t>(kRunRecords));

  ModelRegistry registry;
  auto model = BuildModelFromSpec(RunSpec("SVM+CNN"));
  EXPECT_TRUE(model.ok()) << model.status().ToString();
  registry.Install(std::move(model).ValueOrDie(), "initial");

  TrafficStats stats(/*window=*/256, /*epoch_records=*/kWave,
                     /*epoch_window=*/2);
  stats.SeedReferenceFromTexts(TrainingTexts());

  ReplanOptions options;
  options.enabled = true;
  options.synchronous = true;  // swap inside the batcher's Poll
  options.dwell_epochs = 2;
  options.margin_pts = 0.25;
  // Measured on this exact geometry (32-record epochs, window 2, the
  // HETER@140 training reference): clean waves sit at 0.22-0.33
  // dirtiness (small epochs churn against a small corpus), dirty waves
  // at 0.95-1.0. Flip dirty above 0.70, back clean below 0.40.
  options.dirty_threshold = 0.55;
  options.dirty_band = 0.15;
  options.profile_records = 4750000;
  options.profile_ratio = 0.3;
  options.cascade.simple = models::ModelKind::kSvm;
  options.cascade.deep = models::ModelKind::kCnn;
  options.cascade.budget_pts = 1.0;
  options.cascade.seed = 1;
  options.dataset = "HETER";
  options.records = 140;
  options.spec_dir = testing::TempDir();
  Replanner replanner(&registry, &stats, options);
  replanner.AdoptIncumbentFromRegistry();
  EXPECT_EQ(replanner.state().incumbent, "SVM+CNN");

  BatchingOptions batching;
  batching.batch_cap = kWave;
  batching.deadline_us = 500000;  // waves submit in microseconds
  Batcher batcher(&registry, &stats, batching, &replanner);
  batcher.Start();

  DriftRunResult result;
  CollectedScores collected;
  for (int wave = 0; wave * kWave < kRunRecords; ++wave) {
    for (int i = 0; i < kWave; ++i) {
      EXPECT_TRUE(batcher.Submit(stream[wave * kWave + i].text,
                                 collected.Collector()));
    }
    EXPECT_TRUE(collected.WaitForCount((wave + 1) * kWave))
        << "wave " << wave << " did not complete";
    for (int i = 0; i < kWave; ++i) result.wave_of.push_back(wave);
  }
  batcher.Stop();
  replanner.WaitIdle();

  for (const ScoredRequest& r : collected.results) {
    result.versions.push_back(r.model_version);
    result.scores.push_back(r.score);
  }
  const ReplanState state = replanner.state();
  result.swaps = state.swaps;
  result.failures = state.failures;
  result.final_pair = state.incumbent;
  return result;
}

TEST(ReplanLoopTest, MidStreamSwapNeverSplitsABatchAndEndsOnPlannedPair) {
  const DriftRunResult run = RunDriftLoop(/*threads=*/4);
  ASSERT_EQ(run.versions.size(), static_cast<size_t>(kRunRecords));

  // (a) No batch is ever split across model versions.
  for (int wave = 0; wave < 2 * kSegmentWaves; ++wave) {
    for (int i = 1; i < kWave; ++i) {
      ASSERT_EQ(run.versions[wave * kWave + i],
                run.versions[wave * kWave])
          << "wave " << wave << " split across versions";
    }
  }
  // (b) Versions are monotone: v1 then v2, exactly one boundary.
  int boundaries = 0;
  for (size_t i = 1; i < run.versions.size(); ++i) {
    ASSERT_GE(run.versions[i], run.versions[i - 1]);
    boundaries += run.versions[i] != run.versions[i - 1];
  }
  EXPECT_EQ(boundaries, 1) << "exactly one scripted crossing -> one swap";
  EXPECT_EQ(run.versions.front(), 1u);
  EXPECT_EQ(run.versions.back(), 2u);
  // (c) Swap count equals the scripted boundary crossings: zero flaps.
  EXPECT_EQ(run.swaps, 1u);
  EXPECT_EQ(run.failures, 0u);
  // (d) The loop ends serving the heat-map-correct pair for the drifted
  // profile: simple-only.
  EXPECT_EQ(run.final_pair, "simple");
  // The clean phase (first segment) must be served entirely by v1: the
  // detector cannot fire before the scripted boundary.
  for (int i = 0; i < kSegmentWaves * kWave; ++i) {
    ASSERT_EQ(run.versions[i], 1u) << "premature swap at record " << i;
  }

  // (e) Responses are bit-identical to an offline run of the same
  // schedule: rebuild both models from the same specs and score each wave
  // with whichever version served it.
  auto v1 = BuildModelFromSpec(RunSpec("SVM+CNN"));
  ASSERT_TRUE(v1.ok());
  auto v2 = BuildModelFromSpec(RunSpec("simple"));
  ASSERT_TRUE(v2.ok());
  const std::vector<data::DriftRecord> stream =
      data::GenerateDriftStream(data::CleanToDirtyScenario(
          kSegmentWaves * kWave, 7));
  for (int wave = 0; wave < 2 * kSegmentWaves; ++wave) {
    std::vector<std::string> texts;
    for (int i = 0; i < kWave; ++i) {
      texts.push_back(stream[wave * kWave + i].text);
    }
    const models::TaggingModel* offline =
        run.versions[wave * kWave] == 1u ? v1->get() : v2->get();
    const std::vector<double> expected = offline->ScoreAll(texts);
    for (int i = 0; i < kWave; ++i) {
      ASSERT_EQ(run.scores[wave * kWave + i], expected[i])
          << "wave " << wave << " record " << i
          << " not bit-identical to offline";
    }
  }
}

TEST(ReplanLoopTest, LoopIsBitIdenticalAcrossThreadCounts) {
  const DriftRunResult t1 = RunDriftLoop(1);
  const DriftRunResult t4 = RunDriftLoop(4);
  const DriftRunResult t16 = RunDriftLoop(16);
  SetGlobalPoolThreads(0);

  for (const DriftRunResult* other : {&t4, &t16}) {
    ASSERT_EQ(t1.versions, other->versions);
    ASSERT_EQ(t1.swaps, other->swaps);
    ASSERT_EQ(t1.final_pair, other->final_pair);
    ASSERT_EQ(t1.scores.size(), other->scores.size());
    for (size_t i = 0; i < t1.scores.size(); ++i) {
      ASSERT_EQ(t1.scores[i], other->scores[i])
          << "record " << i << " diverged across thread counts";
    }
  }
}

TEST(ReplanLoopTest, LoopIsThreadInvariantUnderQuantLane) {
  ScopedEnv quant("SEMTAG_QUANT", "1");
  const DriftRunResult t1 = RunDriftLoop(1);
  const DriftRunResult t4 = RunDriftLoop(4);
  SetGlobalPoolThreads(0);
  ASSERT_EQ(t1.versions, t4.versions);
  EXPECT_EQ(t1.swaps, t4.swaps);
  EXPECT_EQ(t1.final_pair, t4.final_pair);
  for (size_t i = 0; i < t1.scores.size(); ++i) {
    ASSERT_EQ(t1.scores[i], t4.scores[i]) << "record " << i;
  }
  EXPECT_EQ(t1.swaps, 1u) << "the drift crossing must survive the lane";
}

TEST(ReplanLoopTest, LoopIsThreadInvariantUnderDeepBatchLane) {
  ScopedEnv batch("SEMTAG_DEEP_BATCH", "8");
  const DriftRunResult t1 = RunDriftLoop(1);
  const DriftRunResult t4 = RunDriftLoop(4);
  SetGlobalPoolThreads(0);
  ASSERT_EQ(t1.versions, t4.versions);
  EXPECT_EQ(t1.swaps, t4.swaps);
  EXPECT_EQ(t1.final_pair, t4.final_pair);
  for (size_t i = 0; i < t1.scores.size(); ++i) {
    ASSERT_EQ(t1.scores[i], t4.scores[i]) << "record " << i;
  }
  EXPECT_EQ(t1.swaps, 1u);
}

// ---------------------------------------------------------------------------
// Env parsing + kStats over the wire
// ---------------------------------------------------------------------------

TEST(ReplanOptionsTest, EnvOverridesParse) {
  ScopedEnv enable("SEMTAG_REPLAN", "1");
  ScopedEnv epoch("SEMTAG_REPLAN_EPOCH", "64");
  ScopedEnv window("SEMTAG_REPLAN_WINDOW", "4");
  ScopedEnv hysteresis("SEMTAG_REPLAN_HYSTERESIS", "5,1.5");
  ScopedEnv dirty("SEMTAG_REPLAN_DIRTY", "0.3,0.05");
  ScopedEnv profile("SEMTAG_REPLAN_PROFILE", "4750000,0.3");
  ScopedEnv pair("SEMTAG_REPLAN_PAIR", "LR+CNN");
  ScopedEnv budget("SEMTAG_REPLAN_BUDGET", "2.0");
  ScopedEnv dir("SEMTAG_REPLAN_DIR", "/tmp/replan");

  const ReplanOptions options = ReplanOptionsFromEnv();
  EXPECT_TRUE(options.enabled);
  EXPECT_EQ(options.epoch_records, 64);
  EXPECT_EQ(options.epoch_window, 4);
  EXPECT_EQ(options.dwell_epochs, 5);
  EXPECT_DOUBLE_EQ(options.margin_pts, 1.5);
  EXPECT_DOUBLE_EQ(options.dirty_threshold, 0.3);
  EXPECT_DOUBLE_EQ(options.dirty_band, 0.05);
  EXPECT_EQ(options.profile_records, 4750000);
  EXPECT_DOUBLE_EQ(options.profile_ratio, 0.3);
  EXPECT_EQ(options.cascade.simple, models::ModelKind::kLr);
  EXPECT_EQ(options.cascade.deep, models::ModelKind::kCnn);
  EXPECT_DOUBLE_EQ(options.cascade.budget_pts, 2.0);
  EXPECT_EQ(options.spec_dir, "/tmp/replan");
}

TEST(ReplanOptionsTest, BadValuesKeepDefaultsAndZeroDisables) {
  ScopedEnv enable("SEMTAG_REPLAN", "0");
  ScopedEnv hysteresis("SEMTAG_REPLAN_HYSTERESIS", "nonsense");
  ScopedEnv pair("SEMTAG_REPLAN_PAIR", "not-a-pair");
  const ReplanOptions options = ReplanOptionsFromEnv();
  EXPECT_FALSE(options.enabled);
  EXPECT_EQ(options.dwell_epochs, ReplanOptions{}.dwell_epochs);
  EXPECT_EQ(options.cascade.simple, models::ModelKind::kSvm);
}

#ifdef __linux__

TEST(ReplanServerTest, KStatsExposesCascadePairThresholdAndReplanState) {
  ModelRegistry registry;
  auto model = BuildModelFromSpec(RunSpec("simple"));
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  registry.Install(std::move(model).ValueOrDie(), "initial");

  ServerOptions options;
  options.replan.enabled = true;
  options.replan.epoch_records = 0;  // no auto-seal: state stays static
  options.replan.dataset = "HETER";
  options.replan.records = 140;
  options.replan.synchronous = true;
  Server server(&registry, options);
  ASSERT_TRUE(server.Start().ok());

  // Speak the wire protocol directly (kStats = 0x03).
  struct Client {
    int fd = -1;
    ~Client() {
      if (fd >= 0) ::close(fd);
    }
  } client;
  client.fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(client.fd, 0);
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(server.port()));
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(client.fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  std::string frame;
  AppendFrame(static_cast<uint8_t>(Opcode::kStats), "", &frame);
  ASSERT_EQ(::write(client.fd, frame.data(), frame.size()),
            static_cast<ssize_t>(frame.size()));
  FrameReader reader;
  uint8_t tag = 0;
  std::string payload;
  for (int spin = 0; spin < 1000 && !reader.Next(&tag, &payload); ++spin) {
    char buf[4096];
    const ssize_t n = ::read(client.fd, buf, sizeof(buf));
    ASSERT_GT(n, 0);
    ASSERT_TRUE(reader.Feed(buf, static_cast<size_t>(n)));
  }
  EXPECT_EQ(tag, static_cast<uint8_t>(StatusCode::kOk));
  // The serving pair, its threshold (simple-only => -1, never escalate),
  // and the replan state are all visible over the wire.
  EXPECT_NE(payload.find("\"pair\": \"simple\""), std::string::npos)
      << payload;
  EXPECT_NE(payload.find("\"threshold\": -1"), std::string::npos) << payload;
  EXPECT_NE(payload.find("\"replan\": {\"enabled\": true"),
            std::string::npos)
      << payload;
  EXPECT_NE(payload.find("\"incumbent\": \"simple\""), std::string::npos)
      << payload;
  EXPECT_NE(payload.find("\"dirtiness\""), std::string::npos) << payload;
  server.Stop();
}

#endif  // __linux__

}  // namespace
}  // namespace semtag::serve
