// The observability layer's two contracts, pinned end to end:
//
//  1. Enabling metrics + tracing must not change a single trained bit.
//     Instrumentation only *reads* model state (losses, timings); the
//     accumulators live outside the math, so every score is bitwise
//     identical with the layer on or off, at any thread count.
//  2. Disabled (the default), an instrumentation site costs one relaxed
//     atomic load and a branch — cheap enough to leave in the training
//     inner loops permanently.

#include <cstdio>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "data/generator.h"
#include "data/specs.h"
#include "models/deep/mini_bert.h"
#include "models/deep/text_cnn.h"
#include "models/simple/logistic_regression.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/validate.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace semtag {
namespace {

data::Dataset SmallDataset(int n) {
  data::GeneratorConfig config;
  config.bg_vocab = 1800;
  config.signal_topic = 22;
  config.positive_topics = {23, 24};
  config.negative_topics = {25, 26};
  config.signal_strength = 0.35;
  config.seed = 977;
  return data::GenerateDataset(data::SharedLanguage(), config, "obs-ovh", n,
                               0.5);
}

models::CnnOptions TinyCnnOptions() {
  models::CnnOptions options;
  options.epochs = 1;
  options.min_optimizer_steps = 1;
  options.max_train_examples = 120;
  return options;
}

/// One tiny pretrained backbone shared by both fine-tuning runs, so the
/// disabled/enabled comparison starts from identical weights.
models::MiniBertBackbone& SharedBackbone() {
  static models::MiniBertBackbone* backbone = [] {
    models::BertConfig config;
    config.max_len = 12;
    config.dim = 16;
    config.heads = 2;
    config.ffn = 32;
    config.layers = 2;
    config.seed = 3;
    const auto corpus =
        data::GeneratePretrainCorpus(data::SharedLanguage(), 300, 10, 71);
    text::VocabularyBuilder builder;
    for (const auto& s : corpus) {
      builder.AddDocument(text::Tokenize(s));
    }
    auto* b = new models::MiniBertBackbone(config, builder.Build(1, 4000));
    models::PretrainOptions pretrain;
    pretrain.epochs = 1;
    b->Pretrain(corpus, pretrain);
    return b;
  }();
  return *backbone;
}

models::BertFinetuneOptions TinyBertOptions() {
  models::BertFinetuneOptions options;
  options.epochs = 1;
  options.min_optimizer_steps = 1;
  options.max_train_examples = 80;
  return options;
}

/// Restores the global obs + pool state around every test.
class ObsOverheadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    metrics_were_enabled_ = obs::MetricsEnabled();
    trace_was_enabled_ = obs::TraceEnabled();
    obs::SetMetricsEnabled(false);
    obs::SetTraceEnabled(false);
  }
  void TearDown() override {
    obs::ResetMetricsForTest();
    obs::ResetTraceForTest();
    obs::SetMetricsEnabled(metrics_were_enabled_);
    obs::SetTraceEnabled(trace_was_enabled_);
    SetGlobalPoolThreads(DefaultThreadCount());
  }

 private:
  bool metrics_were_enabled_ = false;
  bool trace_was_enabled_ = false;
};

TEST_F(ObsOverheadTest, EnabledObservabilityChangesNoTrainedBit) {
  const data::Dataset dataset = SmallDataset(200);
  const auto texts = dataset.Texts();

  // Reference run: everything off (the default production state).
  models::LogisticRegression lr_off;
  ASSERT_TRUE(lr_off.Train(dataset).ok());
  const std::vector<double> lr_ref = lr_off.ScoreAll(texts);
  models::TextCnn cnn_off(TinyCnnOptions());
  ASSERT_TRUE(cnn_off.Train(dataset).ok());
  const std::vector<double> cnn_ref = cnn_off.ScoreAll(texts);
  models::MiniBert bert_off("BERT", SharedBackbone(), TinyBertOptions());
  ASSERT_TRUE(bert_off.Train(dataset).ok());
  const std::vector<double> bert_ref = bert_off.ScoreAll(texts);

  // Instrumented run: metrics + tracing both recording.
  obs::SetMetricsEnabled(true);
  obs::SetTraceEnabled(true);
  models::LogisticRegression lr_on;
  ASSERT_TRUE(lr_on.Train(dataset).ok());
  const std::vector<double> lr_obs = lr_on.ScoreAll(texts);
  models::TextCnn cnn_on(TinyCnnOptions());
  ASSERT_TRUE(cnn_on.Train(dataset).ok());
  const std::vector<double> cnn_obs = cnn_on.ScoreAll(texts);
  models::MiniBert bert_on("BERT", SharedBackbone(), TinyBertOptions());
  ASSERT_TRUE(bert_on.Train(dataset).ok());
  const std::vector<double> bert_obs = bert_on.ScoreAll(texts);
  obs::SetMetricsEnabled(false);
  obs::SetTraceEnabled(false);

  ASSERT_EQ(lr_ref.size(), lr_obs.size());
  for (size_t i = 0; i < lr_ref.size(); ++i) {
    EXPECT_EQ(lr_ref[i], lr_obs[i]) << "LR text " << i;
  }
  ASSERT_EQ(cnn_ref.size(), cnn_obs.size());
  for (size_t i = 0; i < cnn_ref.size(); ++i) {
    EXPECT_EQ(cnn_ref[i], cnn_obs[i]) << "CNN text " << i;
  }
  ASSERT_EQ(bert_ref.size(), bert_obs.size());
  for (size_t i = 0; i < bert_ref.size(); ++i) {
    EXPECT_EQ(bert_ref[i], bert_obs[i]) << "BERT text " << i;
  }
}

TEST_F(ObsOverheadTest, InstrumentedRunActuallyRecords) {
  obs::SetMetricsEnabled(true);
  obs::SetTraceEnabled(true);
  obs::ResetMetricsForTest();
  obs::ResetTraceForTest();

  const data::Dataset dataset = SmallDataset(160);
  models::TextCnn cnn(TinyCnnOptions());
  ASSERT_TRUE(cnn.Train(dataset).ok());

  // Training must have produced CNN step metrics, GEMM counters, and at
  // least one epoch span — the wiring, not just the registry, is live.
  const obs::MetricsSnapshot snap = obs::SnapshotMetrics();
  uint64_t cnn_steps = 0;
  uint64_t gemm_flops = 0;
  for (const auto& [name, value] : snap.counters) {
    if (name == "train/CNN/steps") cnn_steps = value;
    if (name == "la/gemm/flops") gemm_flops = value;
  }
  EXPECT_GT(cnn_steps, 0u);
  EXPECT_GT(gemm_flops, 0u);
  bool saw_loss_hist = false;
  for (const auto& [name, hist] : snap.histograms) {
    if (name == "train/CNN/step_loss") {
      saw_loss_hist = hist.count > 0;
    }
  }
  EXPECT_TRUE(saw_loss_hist);
  EXPECT_GT(obs::GetTraceStats().recorded, 0u);
  const obs::ValidationResult check = obs::ValidateTraceJson(obs::TraceToJson());
  EXPECT_TRUE(check.ok) << check.error;
}

TEST_F(ObsOverheadTest, DisabledSitesAreCheap) {
  // 1M disabled probes of each site kind. The bound is deliberately
  // generous (50 ns/op amortized — two orders above the expected cost) so
  // the test only fails when the disabled path regresses to real work
  // (clock reads, allocation, registry lookups), not from machine noise.
  constexpr int kOps = 1'000'000;
  obs::Histogram& hist = obs::GetHistogram("obs_ovh/hist", obs::LossBuckets());
  obs::Counter& counter = obs::GetCounter("obs_ovh/counter");

  WallTimer timer;
  for (int i = 0; i < kOps; ++i) {
    counter.Add(1);
    hist.Observe(0.5);
    SEMTAG_OBS_COUNT("obs_ovh/macro", 1);
    obs::TraceSpan span("obs_ovh/span");
  }
  const double seconds = timer.ElapsedSeconds();
  const double ns_per_op = seconds * 1e9 / (4.0 * kOps);
  EXPECT_LT(ns_per_op, 50.0) << "disabled-path site cost " << ns_per_op
                             << " ns/op";
  // And truly off: nothing was recorded anywhere.
  EXPECT_EQ(counter.Value(), 0u);
  EXPECT_EQ(hist.TotalCount(), 0u);
  EXPECT_EQ(obs::GetTraceStats().recorded, 0u);
  std::printf("[ obs ] disabled site: %.2f ns/op\n", ns_per_op);
}

TEST_F(ObsOverheadTest, ParallelTrainingDeterministicWithTracingOn) {
  // Tracing stores per-thread and merges at export, so it must not perturb
  // the bit-identical-across-thread-counts contract of the parallel layer.
  obs::SetMetricsEnabled(true);
  obs::SetTraceEnabled(true);
  const data::Dataset dataset = SmallDataset(160);
  const auto texts = dataset.Texts();

  SetGlobalPoolThreads(1);
  models::TextCnn seq_cnn(TinyCnnOptions());
  ASSERT_TRUE(seq_cnn.Train(dataset).ok());
  const std::vector<double> seq = seq_cnn.ScoreAll(texts);

  SetGlobalPoolThreads(4);
  models::TextCnn par_cnn(TinyCnnOptions());
  ASSERT_TRUE(par_cnn.Train(dataset).ok());
  SetGlobalPoolThreads(1);
  const std::vector<double> par = par_cnn.ScoreAll(texts);

  ASSERT_EQ(seq.size(), par.size());
  for (size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i], par[i]) << "text " << i;
  }
  const obs::ValidationResult check = obs::ValidateTraceJson(obs::TraceToJson());
  EXPECT_TRUE(check.ok) << check.error;
}

}  // namespace
}  // namespace semtag
