// Integration tests asserting the paper's headline *shapes* end-to-end on
// small purpose-built datasets (the full-scale shapes are exercised by the
// bench suite; these tests keep the mechanisms from regressing).

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "data/generator.h"
#include "data/sampling.h"
#include "data/specs.h"
#include "eval/calibration.h"
#include "eval/metrics.h"
#include "models/factory.h"

namespace semtag {
namespace {

data::GeneratorConfig BaseConfig(uint64_t seed) {
  data::GeneratorConfig config;
  config.bg_vocab = 2000;
  config.signal_topic = 16;
  config.positive_topics = {17, 18};
  config.negative_topics = {19, 20, 21};
  config.seed = seed;
  return config;
}

core::ExperimentResult RunKind(const data::Dataset& d,
                               models::ModelKind kind) {
  data::Dataset copy = d;
  Rng rng(3);
  copy.Shuffle(&rng);
  auto [train, test] = copy.Split(0.8);
  return core::TrainAndEvaluate(train, test, kind);
}

TEST(StudyShapesTest, ConjunctionSignalFavorsDeepModels) {
  // Purely compositional class: BoW linear models are near chance while
  // the pretrained transformer learns it (the Small-dataset BERT edge).
  auto config = BaseConfig(901);
  config.signal_strength = 0.0;
  config.conjunction = 1.0;
  const data::Dataset d = data::GenerateDataset(
      data::SharedLanguage(), config, "conj", 1200, 0.5);
  const double svm = RunKind(d, models::ModelKind::kSvm).f1;
  const double bert = RunKind(d, models::ModelKind::kBert).f1;
  EXPECT_LT(svm, 0.72);
  EXPECT_GT(bert, 0.80);
  EXPECT_GT(bert, svm + 0.15);
}

TEST(StudyShapesTest, LabelNoiseDepressesEveryModel) {
  auto clean_config = BaseConfig(902);
  clean_config.signal_strength = 0.30;
  auto dirty_config = clean_config;
  dirty_config.neg_contamination = 0.25;
  const data::Dataset clean = data::GenerateDataset(
      data::SharedLanguage(), clean_config, "clean", 1500, 0.3);
  const data::Dataset dirty = data::GenerateDataset(
      data::SharedLanguage(), dirty_config, "dirty", 1500, 0.3);
  for (auto kind : {models::ModelKind::kLr, models::ModelKind::kSvm}) {
    const double f_clean = RunKind(clean, kind).f1;
    const double f_dirty = RunKind(dirty, kind).f1;
    EXPECT_GT(f_clean, f_dirty + 0.08)
        << models::ModelKindName(kind);
  }
}

TEST(StudyShapesTest, HigherRatioHelpsF1) {
  auto config = BaseConfig(903);
  config.signal_strength = 0.18;
  const data::Dataset pool = data::GenerateDataset(
      data::SharedLanguage(), config, "pool", 6000, 0.5);
  Rng rng(9);
  double prev = -1.0;
  int violations = 0;
  for (double ratio : {0.1, 0.3, 0.5}) {
    const data::Dataset sampled =
        data::SampleWithRatio(pool, 2500, ratio, &rng);
    const double f1 = RunKind(sampled, models::ModelKind::kLr).f1;
    if (f1 < prev - 0.02) ++violations;
    prev = f1;
  }
  EXPECT_EQ(violations, 0) << "F1 must rise with the positive ratio";
}

TEST(StudyShapesTest, CalibrationNeverHurtsAndRescuesImbalance) {
  auto config = BaseConfig(904);
  config.signal_strength = 0.22;
  const data::Dataset d = data::GenerateDataset(
      data::SharedLanguage(), config, "imb", 3000, 0.05);
  const auto result = RunKind(d, models::ModelKind::kLr);
  EXPECT_GE(result.calibrated_f1, result.f1 - 1e-9);
  EXPECT_GT(result.calibrated_f1, 0.25);
}

TEST(StudyShapesTest, LargeDirtyVsLargeCleanContrast) {
  // The Large-L vs Large-H contrast on the real study specs (reduced
  // record counts for test speed): BOOK (dirty, imbalanced, entity-heavy)
  // must stay hard for both families while AMAZON (clean, balanced) is
  // easy - the paper's central Figure 11 corner cases.
  const data::Dataset book =
      data::BuildDatasetPool(*data::FindSpec("BOOK"), 8000);
  const data::Dataset amazon =
      data::BuildDatasetPool(*data::FindSpec("AMAZON"), 8000);
  for (auto kind : {models::ModelKind::kSvm, models::ModelKind::kBert}) {
    const double f_book = RunKind(book, kind).f1;
    const double f_amazon = RunKind(amazon, kind).f1;
    EXPECT_LT(f_book, 0.45) << models::ModelKindName(kind);
    EXPECT_GT(f_amazon, 0.80) << models::ModelKindName(kind);
  }
}

TEST(StudyShapesTest, TrainingTimeAsymmetryIsOrdersOfMagnitude) {
  auto config = BaseConfig(906);
  config.signal_strength = 0.3;
  const data::Dataset d = data::GenerateDataset(
      data::SharedLanguage(), config, "time", 1200, 0.5);
  const auto lr = RunKind(d, models::ModelKind::kLr);
  const auto bert = RunKind(d, models::ModelKind::kBert);
  EXPECT_GT(bert.train_seconds, lr.train_seconds * 10)
      << "deep training must be at least an order of magnitude slower";
}

}  // namespace
}  // namespace semtag
