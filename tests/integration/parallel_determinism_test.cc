// The contract of the concurrency layer is not "roughly the same numbers,
// faster" but *bit-identical* numbers at any thread count: the parallel
// split is always by independent output slot (GEMM rows, CV folds, texts),
// so no floating-point reduction ever crosses a thread boundary. These
// tests pin that contract by diffing raw bits between a 1-thread and a
// multi-thread run of every parallel path.

#include <cstring>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/cross_validation.h"
#include "core/experiment.h"
#include "data/generator.h"
#include "data/specs.h"
#include "la/matrix.h"
#include "models/deep/text_cnn.h"

namespace semtag {
namespace {

la::Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  la::Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.Normal());
  }
  return m;
}

testing::AssertionResult BitIdentical(const la::Matrix& a,
                                      const la::Matrix& b) {
  if (!a.SameShape(b)) return testing::AssertionFailure() << "shape mismatch";
  if (std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) != 0) {
    return testing::AssertionFailure() << "payload bits differ";
  }
  return testing::AssertionSuccess();
}

data::Dataset SmallDataset(int n) {
  data::GeneratorConfig config;
  config.bg_vocab = 1800;
  config.signal_topic = 22;
  config.positive_topics = {23, 24};
  config.negative_topics = {25, 26};
  config.signal_strength = 0.35;
  config.seed = 811;
  return data::GenerateDataset(data::SharedLanguage(), config, "par-det", n,
                               0.5);
}

class ParallelDeterminismTest : public ::testing::Test {
 protected:
  void TearDown() override { SetGlobalPoolThreads(DefaultThreadCount()); }
};

TEST_F(ParallelDeterminismTest, GemmBitIdenticalAcrossThreadCounts) {
  // 256^3 sits well above the parallel threshold; the odd shape exercises
  // every unroll remainder; 64^3 sits exactly at the threshold edge.
  const struct {
    size_t m, k, n;
  } shapes[] = {{256, 256, 256}, {97, 131, 65}, {64, 64, 64}};
  for (const auto& s : shapes) {
    const la::Matrix a = RandomMatrix(s.m, s.k, 1001 + s.m);
    const la::Matrix b = RandomMatrix(s.k, s.n, 2002 + s.n);
    const la::Matrix at = a.Transposed();
    const la::Matrix bt = b.Transposed();

    SetGlobalPoolThreads(1);
    la::Matrix ref, ref_ta, ref_tb;
    la::MatMul(a, b, &ref);
    la::MatMulTransA(at, b, &ref_ta);
    la::MatMulTransB(a, bt, &ref_tb);

    for (int threads : {2, 4, 8}) {
      SetGlobalPoolThreads(threads);
      la::Matrix out, out_ta, out_tb;
      la::MatMul(a, b, &out);
      la::MatMulTransA(at, b, &out_ta);
      la::MatMulTransB(a, bt, &out_tb);
      EXPECT_TRUE(BitIdentical(ref, out))
          << s.m << "x" << s.k << "x" << s.n << " @ " << threads;
      EXPECT_TRUE(BitIdentical(ref_ta, out_ta))
          << "TransA " << s.m << "x" << s.k << "x" << s.n << " @ " << threads;
      EXPECT_TRUE(BitIdentical(ref_tb, out_tb))
          << "TransB " << s.m << "x" << s.k << "x" << s.n << " @ " << threads;
    }
  }
}

TEST_F(ParallelDeterminismTest, CrossValidationBitIdenticalToSequential) {
  const data::Dataset dataset = SmallDataset(300);
  for (const auto kind :
       {models::ModelKind::kLr, models::ModelKind::kNaiveBayes}) {
    SetGlobalPoolThreads(1);
    const auto seq = core::CrossValidate(dataset, kind, 5, 42);
    ASSERT_TRUE(seq.ok()) << seq.status().ToString();

    SetGlobalPoolThreads(4);
    const auto par = core::CrossValidate(dataset, kind, 5, 42);
    ASSERT_TRUE(par.ok()) << par.status().ToString();

    ASSERT_EQ(seq->fold_f1.size(), par->fold_f1.size());
    for (size_t f = 0; f < seq->fold_f1.size(); ++f) {
      EXPECT_EQ(seq->fold_f1[f], par->fold_f1[f]) << "fold " << f;
    }
    EXPECT_EQ(seq->mean_f1, par->mean_f1);
    EXPECT_EQ(seq->stddev_f1, par->stddev_f1);
  }
}

TEST_F(ParallelDeterminismTest, ExperimentMetricsBitIdenticalToSequential) {
  data::Dataset dataset = SmallDataset(400);
  Rng shuffle_rng(7);
  dataset.Shuffle(&shuffle_rng);
  auto [train, test] = dataset.Split(0.7);

  SetGlobalPoolThreads(1);
  const auto seq =
      core::TrainAndEvaluate(train, test, models::ModelKind::kLr, 3);
  SetGlobalPoolThreads(4);
  const auto par =
      core::TrainAndEvaluate(train, test, models::ModelKind::kLr, 3);

  EXPECT_EQ(seq.f1, par.f1);
  EXPECT_EQ(seq.precision, par.precision);
  EXPECT_EQ(seq.recall, par.recall);
  EXPECT_EQ(seq.accuracy, par.accuracy);
  EXPECT_EQ(seq.auc, par.auc);
  EXPECT_EQ(seq.calibrated_f1, par.calibrated_f1);
}

TEST_F(ParallelDeterminismTest, DeepTrainingBitIdenticalAcrossThreadCounts) {
  // End-to-end training pin: the kernel layer splits GEMM into paired-row
  // micro-kernel calls, and this must not change with the thread count —
  // the parallel split is by output row, and row pairing happens within
  // each thread's range. Train the same model at 1 and 4 threads and
  // compare every score bitwise.
  models::CnnOptions options;
  options.epochs = 1;
  options.min_optimizer_steps = 1;
  options.max_train_examples = 120;
  const data::Dataset dataset = SmallDataset(160);
  const auto texts = dataset.Texts();

  SetGlobalPoolThreads(1);
  models::TextCnn seq_cnn(options);
  ASSERT_TRUE(seq_cnn.Train(dataset).ok());
  const std::vector<double> seq = seq_cnn.ScoreAll(texts);

  SetGlobalPoolThreads(4);
  models::TextCnn par_cnn(options);
  ASSERT_TRUE(par_cnn.Train(dataset).ok());
  SetGlobalPoolThreads(1);  // score sequentially: isolates training effects
  const std::vector<double> par = par_cnn.ScoreAll(texts);

  ASSERT_EQ(seq.size(), par.size());
  for (size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i], par[i]) << "text " << i;
  }
}

TEST_F(ParallelDeterminismTest, BatchedDeepInferenceBitIdentical) {
  // A deliberately tiny CNN: enough to push real tensors through the nn
  // stack's batched-inference path without slow training (one epoch).
  models::CnnOptions options;
  options.epochs = 1;
  options.min_optimizer_steps = 1;
  options.max_train_examples = 120;
  models::TextCnn cnn(options);

  data::Dataset dataset = SmallDataset(160);
  SetGlobalPoolThreads(1);
  ASSERT_TRUE(cnn.Train(dataset).ok());
  const auto texts = dataset.Texts();
  const std::vector<double> seq = cnn.ScoreAll(texts);

  SetGlobalPoolThreads(4);
  const std::vector<double> par = cnn.ScoreAll(texts);
  ASSERT_EQ(seq.size(), par.size());
  for (size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i], par[i]) << "text " << i;
  }
}

}  // namespace
}  // namespace semtag
