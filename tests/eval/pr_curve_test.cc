#include <gtest/gtest.h>

#include "common/rng.h"
#include "eval/pr_curve.h"

namespace semtag::eval {
namespace {

TEST(PrCurveTest, PerfectSeparationHasPrecisionOne) {
  const std::vector<int> labels = {1, 1, 0, 0};
  const std::vector<double> scores = {0.9, 0.8, 0.2, 0.1};
  const auto curve = PrecisionRecallCurve(labels, scores);
  ASSERT_EQ(curve.size(), 4u);
  EXPECT_DOUBLE_EQ(curve[0].precision, 1.0);
  EXPECT_DOUBLE_EQ(curve[0].recall, 0.5);
  EXPECT_DOUBLE_EQ(curve[1].precision, 1.0);
  EXPECT_DOUBLE_EQ(curve[1].recall, 1.0);
  EXPECT_DOUBLE_EQ(AveragePrecision(labels, scores), 1.0);
}

TEST(PrCurveTest, KnownMixedCase) {
  // Descending: pos, neg, pos, neg.
  const std::vector<int> labels = {1, 0, 1, 0};
  const std::vector<double> scores = {0.9, 0.8, 0.7, 0.6};
  const auto curve = PrecisionRecallCurve(labels, scores);
  ASSERT_EQ(curve.size(), 4u);
  EXPECT_DOUBLE_EQ(curve[0].precision, 1.0);     // 1/1
  EXPECT_DOUBLE_EQ(curve[1].precision, 0.5);     // 1/2
  EXPECT_DOUBLE_EQ(curve[2].precision, 2.0 / 3); // 2/3
  EXPECT_DOUBLE_EQ(curve[2].recall, 1.0);
  // AP = 0.5*1.0 + 0.5*(2/3).
  EXPECT_NEAR(AveragePrecision(labels, scores), 0.5 + 0.5 * 2.0 / 3,
              1e-12);
}

TEST(PrCurveTest, TiedScoresCollapseToOnePoint) {
  const std::vector<int> labels = {1, 0, 1};
  const std::vector<double> scores = {0.5, 0.5, 0.5};
  const auto curve = PrecisionRecallCurve(labels, scores);
  ASSERT_EQ(curve.size(), 1u);
  EXPECT_DOUBLE_EQ(curve[0].precision, 2.0 / 3);
  EXPECT_DOUBLE_EQ(curve[0].recall, 1.0);
}

TEST(PrCurveTest, RecallIsNonDecreasing) {
  Rng rng(4);
  std::vector<int> labels;
  std::vector<double> scores;
  for (int i = 0; i < 300; ++i) {
    labels.push_back(rng.Bernoulli(0.3));
    scores.push_back(rng.Normal(labels.back() * 0.5, 1.0));
  }
  const auto curve = PrecisionRecallCurve(labels, scores);
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].recall, curve[i - 1].recall);
    EXPECT_LT(curve[i].threshold, curve[i - 1].threshold);
  }
  EXPECT_DOUBLE_EQ(curve.back().recall, 1.0);
}

TEST(PrCurveTest, NoPositivesYieldsEmptyCurveAndZeroAp) {
  EXPECT_TRUE(PrecisionRecallCurve({0, 0}, {0.1, 0.9}).empty());
  EXPECT_DOUBLE_EQ(AveragePrecision({0, 0}, {0.1, 0.9}), 0.0);
}

TEST(PrCurveTest, ApOfRandomScoresApproachesBaseRate) {
  Rng rng(8);
  std::vector<int> labels;
  std::vector<double> scores;
  for (int i = 0; i < 5000; ++i) {
    labels.push_back(rng.Bernoulli(0.2));
    scores.push_back(rng.UniformDouble());  // uninformative
  }
  EXPECT_NEAR(AveragePrecision(labels, scores), 0.2, 0.03);
}

}  // namespace
}  // namespace semtag::eval
