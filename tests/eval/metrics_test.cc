#include <gtest/gtest.h>

#include "eval/metrics.h"

namespace semtag::eval {
namespace {

TEST(ConfusionTest, PaperWorkedExample) {
  // Section 5.1: 10 positives, 8 tagged, 6 correct => P=0.75, R=0.6,
  // F1=0.66...
  Confusion c;
  c.tp = 6;
  c.fp = 2;
  c.fn = 4;
  c.tn = 88;
  EXPECT_DOUBLE_EQ(c.Precision(), 0.75);
  EXPECT_DOUBLE_EQ(c.Recall(), 0.6);
  EXPECT_NEAR(c.F1(), 2 * 0.75 * 0.6 / (0.75 + 0.6), 1e-12);
}

TEST(ConfusionTest, DegenerateCases) {
  Confusion empty;
  EXPECT_DOUBLE_EQ(empty.Precision(), 0.0);
  EXPECT_DOUBLE_EQ(empty.Recall(), 0.0);
  EXPECT_DOUBLE_EQ(empty.F1(), 0.0);
  EXPECT_DOUBLE_EQ(empty.Accuracy(), 0.0);
}

TEST(ComputeConfusionTest, CountsAllQuadrants) {
  const std::vector<int> labels = {1, 1, 0, 0, 1};
  const std::vector<int> preds = {1, 0, 1, 0, 1};
  const Confusion c = ComputeConfusion(labels, preds);
  EXPECT_EQ(c.tp, 2);
  EXPECT_EQ(c.fn, 1);
  EXPECT_EQ(c.fp, 1);
  EXPECT_EQ(c.tn, 1);
  EXPECT_DOUBLE_EQ(Accuracy(labels, preds), 3.0 / 5.0);
}

TEST(F1ScoreTest, PerfectAndWorst) {
  EXPECT_DOUBLE_EQ(F1Score({1, 0, 1}, {1, 0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(F1Score({1, 0, 1}, {0, 1, 0}), 0.0);
}

TEST(AucTest, PerfectRanking) {
  EXPECT_DOUBLE_EQ(Auc({0, 0, 1, 1}, {0.1, 0.2, 0.8, 0.9}), 1.0);
}

TEST(AucTest, ReversedRanking) {
  EXPECT_DOUBLE_EQ(Auc({0, 0, 1, 1}, {0.9, 0.8, 0.2, 0.1}), 0.0);
}

TEST(AucTest, RandomScoresGiveHalf) {
  // All scores identical: ties share ranks -> AUC 0.5 exactly.
  EXPECT_DOUBLE_EQ(Auc({0, 1, 0, 1}, {0.5, 0.5, 0.5, 0.5}), 0.5);
}

TEST(AucTest, SingleClassIsHalf) {
  EXPECT_DOUBLE_EQ(Auc({1, 1}, {0.1, 0.9}), 0.5);
  EXPECT_DOUBLE_EQ(Auc({0, 0}, {0.1, 0.9}), 0.5);
}

TEST(AucTest, KnownMixedValue) {
  // pos scores {0.8, 0.4}, neg scores {0.6, 0.2}:
  // pairs won 3 of 4 -> 0.75.
  EXPECT_DOUBLE_EQ(Auc({1, 0, 1, 0}, {0.8, 0.6, 0.4, 0.2}), 0.75);
}

TEST(ThresholdScoresTest, ThresholdIsInclusive) {
  const auto preds = ThresholdScores({0.2, 0.5, 0.7}, 0.5);
  EXPECT_EQ(preds, (std::vector<int>{0, 1, 1}));
}

TEST(AveragesTest, MacroIsUnweighted) {
  EXPECT_DOUBLE_EQ(MacroAverage({0.2, 0.4, 0.9}), 0.5);
  EXPECT_DOUBLE_EQ(MacroAverage({}), 0.0);
}

TEST(AveragesTest, MicroWeightsBySize) {
  // Large dataset dominates: the paper's Section on micro-F1.
  const double micro = MicroAverage({0.9, 0.1}, {1, 99});
  EXPECT_NEAR(micro, 0.9 * 0.01 + 0.1 * 0.99, 1e-12);
}

}  // namespace
}  // namespace semtag::eval
