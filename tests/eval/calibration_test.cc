#include <gtest/gtest.h>

#include "common/rng.h"
#include "eval/calibration.h"
#include "eval/metrics.h"

namespace semtag::eval {
namespace {

TEST(CalibrationTest, FindsSeparatingThreshold) {
  // Positives all score >= 0.6, negatives <= 0.4: some threshold reaches
  // F1 = 1.
  const std::vector<int> labels = {1, 1, 1, 0, 0, 0};
  const std::vector<double> scores = {0.9, 0.8, 0.6, 0.4, 0.2, 0.1};
  const auto result = CalibrateMaxF1(labels, scores, 100);
  EXPECT_DOUBLE_EQ(result.best_f1, 1.0);
  EXPECT_GT(result.best_threshold, 0.4);
  EXPECT_LE(result.best_threshold, 0.6);
}

TEST(CalibrationTest, BeatsNaturalThresholdOnImbalance) {
  // A model whose scores for positives hover around 0.3 (below the 0.5
  // natural boundary): argmax F1 is 0, calibrated F1 is high. This is the
  // appendix's motivation for calibration on imbalanced data.
  Rng rng(5);
  std::vector<int> labels;
  std::vector<double> scores;
  for (int i = 0; i < 1000; ++i) {
    const bool pos = i % 20 == 0;  // 5% positive
    labels.push_back(pos);
    scores.push_back(pos ? rng.UniformDouble(0.25, 0.45)
                         : rng.UniformDouble(0.0, 0.28));
  }
  const double argmax_f1 =
      F1Score(labels, ThresholdScores(scores, 0.5));
  const auto calibrated = CalibrateMaxF1(labels, scores);
  EXPECT_LT(argmax_f1, 0.01);
  EXPECT_GT(calibrated.best_f1, 0.8);
}

TEST(CalibrationTest, CurveHasRequestedResolution) {
  const auto result =
      CalibrateMaxF1({1, 0}, {0.9, 0.1}, /*num_thresholds=*/50);
  EXPECT_EQ(result.f1_curve.size(), 50u);
  EXPECT_EQ(result.thresholds.size(), 50u);
  EXPECT_DOUBLE_EQ(result.thresholds.front(), 0.1);
  EXPECT_DOUBLE_EQ(result.thresholds.back(), 0.9);
}

TEST(CalibrationTest, SweepNeverBeatsExhaustive) {
  // Each curve point must equal the directly computed F1 at that
  // threshold (property check of the two-pointer sweep).
  Rng rng(7);
  std::vector<int> labels;
  std::vector<double> scores;
  for (int i = 0; i < 200; ++i) {
    labels.push_back(rng.Bernoulli(0.3));
    scores.push_back(rng.UniformDouble());
  }
  const auto result = CalibrateMaxF1(labels, scores, 37);
  for (size_t i = 0; i < result.thresholds.size(); ++i) {
    const double direct =
        F1Score(labels, ThresholdScores(scores, result.thresholds[i]));
    EXPECT_NEAR(result.f1_curve[i], direct, 1e-12) << "threshold index "
                                                   << i;
  }
}

TEST(CalibrationTest, MoreThresholdsNeverHurt) {
  Rng rng(9);
  std::vector<int> labels;
  std::vector<double> scores;
  for (int i = 0; i < 500; ++i) {
    labels.push_back(rng.Bernoulli(0.1));
    scores.push_back(rng.Normal(labels.back() ? 0.6 : 0.4, 0.2));
  }
  double prev = 0.0;
  for (int t : {100, 200, 300, 400}) {
    const double f1 = CalibrateMaxF1(labels, scores, t).best_f1;
    EXPECT_GE(f1, prev - 0.02) << t;  // monotone up to grid effects
    prev = f1;
  }
}

TEST(CalibrationTest, EmptyInput) {
  const auto result = CalibrateMaxF1({}, {});
  EXPECT_DOUBLE_EQ(result.best_f1, 0.0);
}

}  // namespace
}  // namespace semtag::eval
