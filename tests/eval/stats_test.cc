#include <cmath>

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "eval/stats.h"

namespace semtag::eval {
namespace {

TEST(MeanStdDevTest, Basics) {
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_NEAR(StdDev({2, 4, 4, 4, 5, 5, 7, 9}), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(StdDev({5}), 0.0);
}

TEST(IncompleteBetaTest, BoundaryValues) {
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2, 3, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2, 3, 1.0), 1.0);
}

TEST(IncompleteBetaTest, SymmetricCase) {
  // I_{0.5}(a, a) = 0.5 by symmetry.
  for (double a : {0.5, 1.0, 3.0, 10.0}) {
    EXPECT_NEAR(RegularizedIncompleteBeta(a, a, 0.5), 0.5, 1e-9) << a;
  }
}

TEST(IncompleteBetaTest, UniformSpecialCase) {
  // I_x(1, 1) = x.
  for (double x : {0.1, 0.37, 0.8}) {
    EXPECT_NEAR(RegularizedIncompleteBeta(1, 1, x), x, 1e-9);
  }
}

TEST(StudentTCdfTest, SymmetryAndKnownValues) {
  EXPECT_NEAR(StudentTCdf(0.0, 5.0), 0.5, 1e-9);
  // t distribution with df=1 is Cauchy: CDF(1) = 0.75.
  EXPECT_NEAR(StudentTCdf(1.0, 1.0), 0.75, 1e-6);
  // Large df approaches the normal: CDF(1.96, df=1e6) ~ 0.975.
  EXPECT_NEAR(StudentTCdf(1.96, 1e6), 0.975, 1e-3);
  EXPECT_NEAR(StudentTCdf(-1.0, 3.0), 1.0 - StudentTCdf(1.0, 3.0), 1e-9);
}

TEST(WelchTTestTest, ClearlySeparatedSamples) {
  const std::vector<double> a = {0.90, 0.91, 0.92};
  const std::vector<double> b = {0.10, 0.11, 0.12};
  const TTestResult r = WelchTTest(a, b);
  EXPECT_GT(r.t, 10.0);
  EXPECT_LT(r.p_value, 0.001);
  EXPECT_EQ(r.Stars(), "***");
}

TEST(WelchTTestTest, OverlappingSamplesNotSignificant) {
  const std::vector<double> a = {0.50, 0.58, 0.44};
  const std::vector<double> b = {0.52, 0.47, 0.55};
  const TTestResult r = WelchTTest(a, b);
  EXPECT_GT(r.p_value, 0.05);
  EXPECT_EQ(r.Stars(), "n.s.");
}

TEST(WelchTTestTest, IdenticalConstantSamples) {
  const std::vector<double> a = {0.5, 0.5, 0.5};
  const TTestResult r = WelchTTest(a, a);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
}

TEST(WelchTTestTest, MatchesReferenceImplementation) {
  // Hand-computed Welch statistic for
  // a = [14.1, 13.5, 15.2, 14.8], b = [12.2, 13.1, 12.8]:
  // t = 1.7 / sqrt(0.5667/4 + 0.21/3) = 3.695, df = 4.90, p ~ 0.0145.
  const std::vector<double> a = {14.1, 13.5, 15.2, 14.8};
  const std::vector<double> b = {12.2, 13.1, 12.8};
  const TTestResult r = WelchTTest(a, b);
  EXPECT_NEAR(r.t, 3.695, 0.01);
  EXPECT_NEAR(r.degrees_of_freedom, 4.90, 0.05);
  EXPECT_NEAR(r.p_value, 0.0145, 0.005);
  EXPECT_EQ(r.Stars(), "*");
}

TEST(BootstrapTest, IntervalCoversPointEstimate) {
  std::vector<int> labels, preds;
  for (int i = 0; i < 200; ++i) {
    labels.push_back(i % 3 == 0);
    preds.push_back(i % 3 == 0 ? (i % 9 != 0) : (i % 17 == 0));
  }
  const double point = F1Score(labels, preds);
  const auto ci = BootstrapF1Interval(labels, preds, 500, 0.05, 3);
  EXPECT_LE(ci.low, point);
  EXPECT_GE(ci.high, point);
  EXPECT_LT(ci.low, ci.high);
}

TEST(BootstrapTest, DeterministicUnderSeed) {
  std::vector<int> labels = {1, 0, 1, 0, 1, 1, 0, 0, 1, 0};
  std::vector<int> preds = {1, 0, 0, 0, 1, 1, 1, 0, 1, 0};
  const auto a = BootstrapF1Interval(labels, preds, 200, 0.1, 7);
  const auto b = BootstrapF1Interval(labels, preds, 200, 0.1, 7);
  EXPECT_DOUBLE_EQ(a.low, b.low);
  EXPECT_DOUBLE_EQ(a.high, b.high);
}

TEST(BootstrapTest, PerfectPredictionsGiveDegenerateInterval) {
  std::vector<int> labels = {1, 0, 1, 0, 1};
  const auto ci = BootstrapF1Interval(labels, labels, 200, 0.05, 1);
  EXPECT_DOUBLE_EQ(ci.low, 1.0);
  EXPECT_DOUBLE_EQ(ci.high, 1.0);
}

TEST(StarsTest, Buckets) {
  TTestResult r;
  r.p_value = 0.04;
  EXPECT_EQ(r.Stars(), "*");
  r.p_value = 0.004;
  EXPECT_EQ(r.Stars(), "**");
  r.p_value = 0.0004;
  EXPECT_EQ(r.Stars(), "***");
  r.p_value = 0.5;
  EXPECT_EQ(r.Stars(), "n.s.");
}

}  // namespace
}  // namespace semtag::eval
