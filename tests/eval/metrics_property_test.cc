// Property-based checks of the metric implementations over randomized
// inputs (parameterized over seeds).

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "eval/calibration.h"
#include "eval/metrics.h"

namespace semtag::eval {
namespace {

struct RandomCase {
  std::vector<int> labels;
  std::vector<double> scores;
};

RandomCase MakeCase(uint64_t seed, size_t n, double ratio) {
  Rng rng(seed);
  RandomCase c;
  for (size_t i = 0; i < n; ++i) {
    const int y = rng.Bernoulli(ratio) ? 1 : 0;
    c.labels.push_back(y);
    c.scores.push_back(rng.Normal(y * 0.8, 1.0));
  }
  return c;
}

class MetricsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MetricsPropertyTest, AucInvariantUnderMonotoneTransform) {
  const RandomCase c = MakeCase(GetParam(), 400, 0.3);
  const double base = Auc(c.labels, c.scores);
  std::vector<double> transformed = c.scores;
  for (auto& s : transformed) s = std::exp(0.5 * s) + 3.0;
  EXPECT_NEAR(Auc(c.labels, transformed), base, 1e-9);
}

TEST_P(MetricsPropertyTest, AucFlipsUnderNegation) {
  const RandomCase c = MakeCase(GetParam() + 100, 300, 0.4);
  std::vector<double> negated = c.scores;
  for (auto& s : negated) s = -s;
  EXPECT_NEAR(Auc(c.labels, c.scores) + Auc(c.labels, negated), 1.0, 1e-9);
}

TEST_P(MetricsPropertyTest, F1BoundedByPrecisionAndRecall) {
  const RandomCase c = MakeCase(GetParam() + 200, 500, 0.2);
  const auto preds = ThresholdScores(c.scores, 0.4);
  const Confusion conf = ComputeConfusion(c.labels, preds);
  const double f1 = conf.F1();
  EXPECT_LE(f1, std::max(conf.Precision(), conf.Recall()) + 1e-12);
  EXPECT_GE(f1, std::min(conf.Precision(), conf.Recall()) - 1e-12);
}

TEST_P(MetricsPropertyTest, CalibratedF1DominatesAnyFixedThreshold) {
  const RandomCase c = MakeCase(GetParam() + 300, 400, 0.25);
  const auto calibration = CalibrateMaxF1(c.labels, c.scores, 400);
  for (double t : {-1.0, -0.3, 0.0, 0.4, 0.9}) {
    const double fixed = F1Score(c.labels, ThresholdScores(c.scores, t));
    // Dense sweep over the score range dominates up to grid resolution.
    EXPECT_GE(calibration.best_f1, fixed - 0.03) << "threshold " << t;
  }
}

TEST_P(MetricsPropertyTest, MicroEqualsMacroUnderEqualWeights) {
  Rng rng(GetParam() + 400);
  std::vector<double> values;
  std::vector<int64_t> weights;
  for (int i = 0; i < 7; ++i) {
    values.push_back(rng.UniformDouble());
    weights.push_back(10);
  }
  EXPECT_NEAR(MicroAverage(values, weights), MacroAverage(values), 1e-12);
}

TEST_P(MetricsPropertyTest, AccuracyMatchesConfusionIdentity) {
  const RandomCase c = MakeCase(GetParam() + 500, 250, 0.5);
  const auto preds = ThresholdScores(c.scores, 0.2);
  const Confusion conf = ComputeConfusion(c.labels, preds);
  EXPECT_EQ(conf.tp + conf.fp + conf.tn + conf.fn, 250);
  EXPECT_NEAR(Accuracy(c.labels, preds), conf.Accuracy(), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricsPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace semtag::eval
