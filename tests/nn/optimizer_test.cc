#include <cmath>

#include <gtest/gtest.h>

#include "nn/ops.h"
#include "nn/optimizer.h"

namespace semtag::nn {
namespace {

/// Minimizes f(w) = (w - 3)^2 elementwise.
double RunQuadratic(Optimizer* optimizer, const Variable& w, int steps) {
  for (int s = 0; s < steps; ++s) {
    Variable target(la::Matrix(1, 4, 3.0f));
    Variable diff = Sub(w, target);
    Variable loss = SumToScalar(Mul(diff, diff));
    Backward(loss);
    optimizer->Step();
  }
  double err = 0.0;
  for (size_t i = 0; i < w.value().size(); ++i) {
    err += std::fabs(w.value().data()[i] - 3.0);
  }
  return err / 4.0;
}

TEST(SgdTest, ConvergesOnQuadratic) {
  Variable w(la::Matrix(1, 4, 0.0f), true);
  Sgd sgd({w}, 0.1f);
  EXPECT_LT(RunQuadratic(&sgd, w, 100), 1e-3);
}

TEST(SgdTest, MomentumConverges) {
  Variable w(la::Matrix(1, 4, 0.0f), true);
  Sgd sgd({w}, 0.05f, 0.9f);
  EXPECT_LT(RunQuadratic(&sgd, w, 200), 1e-2);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Variable w(la::Matrix(1, 4, 0.0f), true);
  Adam adam({w}, 0.3f);
  EXPECT_LT(RunQuadratic(&adam, w, 200), 1e-2);
}

TEST(SgdTest, WeightDecayShrinksWeights) {
  Variable w(la::Matrix(1, 2, 10.0f), true);
  Sgd sgd({w}, 0.1f, 0.0f, /*weight_decay=*/0.5f);
  // Zero gradient step: only decay applies.
  Variable loss = SumToScalar(ScalarMul(w, 0.0f));
  Backward(loss);
  sgd.Step();
  EXPECT_NEAR(w.value()(0, 0), 10.0f * (1.0f - 0.1f * 0.5f), 1e-5);
}

TEST(OptimizerTest, ClipGradNormBoundsGlobalNorm) {
  Variable a(la::Matrix(1, 3, 0.0f), true);
  Variable b(la::Matrix(1, 3, 0.0f), true);
  Sgd sgd({a, b}, 1.0f);
  Variable loss =
      SumToScalar(Add(ScalarMul(a, 30.0f), ScalarMul(b, 40.0f)));
  Backward(loss);
  sgd.ClipGradNorm(1.0f);
  const double norm = std::sqrt(
      std::pow(static_cast<double>(a.grad().Norm()), 2) +
      std::pow(static_cast<double>(b.grad().Norm()), 2));
  EXPECT_NEAR(norm, 1.0, 1e-4);
}

TEST(OptimizerTest, StepZeroesGradients) {
  Variable w(la::Matrix(1, 2, 1.0f), true);
  Adam adam({w}, 0.01f);
  Backward(SumToScalar(Mul(w, w)));
  EXPECT_GT(w.grad().Norm(), 0.0f);
  adam.Step();
  EXPECT_FLOAT_EQ(w.grad().Norm(), 0.0f);
}

TEST(OptimizerTest, UntouchedParameterIsSkipped) {
  // A parameter that never received a gradient must not be updated.
  Variable used(la::Matrix(1, 2, 1.0f), true);
  Variable unused(la::Matrix(1, 2, 5.0f), true);
  Adam adam({used, unused}, 0.5f);
  Backward(SumToScalar(Mul(used, used)));
  adam.Step();
  EXPECT_FLOAT_EQ(unused.value()(0, 0), 5.0f);
  EXPECT_NE(used.value()(0, 0), 1.0f);
}

}  // namespace
}  // namespace semtag::nn
