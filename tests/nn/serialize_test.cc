#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "common/fault.h"
#include "common/rng.h"
#include "la/init.h"
#include "nn/serialize.h"

namespace semtag::nn {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::vector<Variable> RandomParams(uint64_t seed) {
  Rng rng(seed);
  la::Matrix a(4, 5);
  la::Matrix b(2, 3);
  la::XavierUniform(&a, &rng);
  la::XavierUniform(&b, &rng);
  return {Variable(a, true), Variable(b, true)};
}

std::vector<Variable> EmptyLike() {
  return {Variable(la::Matrix(4, 5), true), Variable(la::Matrix(2, 3), true)};
}

TEST(SerializeTest, RoundTrip) {
  Rng rng(1);
  la::Matrix a(3, 4);
  la::Matrix b(1, 7);
  la::XavierUniform(&a, &rng);
  la::XavierUniform(&b, &rng);
  std::vector<Variable> params = {Variable(a, true), Variable(b, true)};
  const std::string path = TempPath("semtag_ckpt_roundtrip.bin");
  ASSERT_TRUE(SaveCheckpoint(path, params).ok());

  std::vector<Variable> loaded = {Variable(la::Matrix(3, 4), true),
                                  Variable(la::Matrix(1, 7), true)};
  ASSERT_TRUE(LoadCheckpoint(path, &loaded).ok());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_FLOAT_EQ(loaded[0].value().data()[i], a.data()[i]);
  }
  for (size_t i = 0; i < b.size(); ++i) {
    EXPECT_FLOAT_EQ(loaded[1].value().data()[i], b.data()[i]);
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, ShapeMismatchIsRejected) {
  std::vector<Variable> params = {Variable(la::Matrix(2, 2), true)};
  const std::string path = TempPath("semtag_ckpt_shape.bin");
  ASSERT_TRUE(SaveCheckpoint(path, params).ok());
  std::vector<Variable> wrong = {Variable(la::Matrix(2, 3), true)};
  EXPECT_FALSE(LoadCheckpoint(path, &wrong).ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, CountMismatchIsRejected) {
  std::vector<Variable> params = {Variable(la::Matrix(2, 2), true)};
  const std::string path = TempPath("semtag_ckpt_count.bin");
  ASSERT_TRUE(SaveCheckpoint(path, params).ok());
  std::vector<Variable> wrong = {Variable(la::Matrix(2, 2), true),
                                 Variable(la::Matrix(2, 2), true)};
  EXPECT_FALSE(LoadCheckpoint(path, &wrong).ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileIsIoError) {
  std::vector<Variable> params = {Variable(la::Matrix(1, 1), true)};
  const Status st =
      LoadCheckpoint("/nonexistent/dir/ckpt.bin", &params);
  EXPECT_EQ(st.code(), StatusCode::kIoError);
}

TEST(SerializeTest, CorruptHeaderIsRejected) {
  const std::string path = TempPath("semtag_ckpt_corrupt.bin");
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a checkpoint", f);
  std::fclose(f);
  std::vector<Variable> params = {Variable(la::Matrix(1, 1), true)};
  EXPECT_FALSE(LoadCheckpoint(path, &params).ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, BitFlipFailsCrcAndQuarantines) {
  const std::string path = TempPath("semtag_ckpt_bitflip.bin");
  ASSERT_TRUE(SaveCheckpoint(path, RandomParams(3)).ok());
  // Flip one bit in the middle of the tensor payload.
  {
    std::fstream f(path,
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(0, std::ios::end);
    const auto size = static_cast<long>(f.tellg());
    f.seekg(size / 2);
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x10);
    f.seekp(size / 2);
    f.write(&byte, 1);
  }
  auto params = EmptyLike();
  const Status st = LoadCheckpoint(path, &params);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  // The corrupt file was moved aside so the next writer starts clean.
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_TRUE(std::filesystem::exists(path + ".corrupt"));
  std::filesystem::remove(path + ".corrupt");
}

TEST(SerializeTest, TruncationIsRejected) {
  const std::string path = TempPath("semtag_ckpt_trunc.bin");
  ASSERT_TRUE(SaveCheckpoint(path, RandomParams(4)).ok());
  const auto full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full / 2);
  auto params = EmptyLike();
  EXPECT_FALSE(LoadCheckpoint(path, &params).ok());
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".corrupt");
}

TEST(SerializeTest, InjectedReadCorruptionIsCaughtByCrc) {
  const std::string path = TempPath("semtag_ckpt_fault.bin");
  const auto saved = RandomParams(5);
  ASSERT_TRUE(SaveCheckpoint(path, saved).ok());
  ASSERT_TRUE(
      SetFaultsFromSpec("read_corrupt:match=ckpt_fault:count=1").ok());
  auto params = EmptyLike();
  EXPECT_FALSE(LoadCheckpoint(path, &params).ok());
  ClearFaults();
  // The on-disk file was fine (only the read was poisoned), but the CRC
  // check cannot tell the difference, so it was quarantined: re-save and
  // verify a clean round trip restores service.
  ASSERT_TRUE(SaveCheckpoint(path, saved).ok());
  auto reloaded = EmptyLike();
  ASSERT_TRUE(LoadCheckpoint(path, &reloaded).ok());
  for (size_t i = 0; i < saved[0].value().size(); ++i) {
    EXPECT_FLOAT_EQ(reloaded[0].value().data()[i],
                    saved[0].value().data()[i]);
  }
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".corrupt");
}

}  // namespace
}  // namespace semtag::nn
