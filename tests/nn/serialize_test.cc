#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "la/init.h"
#include "nn/serialize.h"

namespace semtag::nn {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(SerializeTest, RoundTrip) {
  Rng rng(1);
  la::Matrix a(3, 4);
  la::Matrix b(1, 7);
  la::XavierUniform(&a, &rng);
  la::XavierUniform(&b, &rng);
  std::vector<Variable> params = {Variable(a, true), Variable(b, true)};
  const std::string path = TempPath("semtag_ckpt_roundtrip.bin");
  ASSERT_TRUE(SaveCheckpoint(path, params).ok());

  std::vector<Variable> loaded = {Variable(la::Matrix(3, 4), true),
                                  Variable(la::Matrix(1, 7), true)};
  ASSERT_TRUE(LoadCheckpoint(path, &loaded).ok());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_FLOAT_EQ(loaded[0].value().data()[i], a.data()[i]);
  }
  for (size_t i = 0; i < b.size(); ++i) {
    EXPECT_FLOAT_EQ(loaded[1].value().data()[i], b.data()[i]);
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, ShapeMismatchIsRejected) {
  std::vector<Variable> params = {Variable(la::Matrix(2, 2), true)};
  const std::string path = TempPath("semtag_ckpt_shape.bin");
  ASSERT_TRUE(SaveCheckpoint(path, params).ok());
  std::vector<Variable> wrong = {Variable(la::Matrix(2, 3), true)};
  EXPECT_FALSE(LoadCheckpoint(path, &wrong).ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, CountMismatchIsRejected) {
  std::vector<Variable> params = {Variable(la::Matrix(2, 2), true)};
  const std::string path = TempPath("semtag_ckpt_count.bin");
  ASSERT_TRUE(SaveCheckpoint(path, params).ok());
  std::vector<Variable> wrong = {Variable(la::Matrix(2, 2), true),
                                 Variable(la::Matrix(2, 2), true)};
  EXPECT_FALSE(LoadCheckpoint(path, &wrong).ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileIsIoError) {
  std::vector<Variable> params = {Variable(la::Matrix(1, 1), true)};
  const Status st =
      LoadCheckpoint("/nonexistent/dir/ckpt.bin", &params);
  EXPECT_EQ(st.code(), StatusCode::kIoError);
}

TEST(SerializeTest, CorruptHeaderIsRejected) {
  const std::string path = TempPath("semtag_ckpt_corrupt.bin");
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a checkpoint", f);
  std::fclose(f);
  std::vector<Variable> params = {Variable(la::Matrix(1, 1), true)};
  EXPECT_FALSE(LoadCheckpoint(path, &params).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace semtag::nn
