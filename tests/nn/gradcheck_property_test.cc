// Parameterized gradient checks of composed networks: instead of checking
// each op in isolation (autograd_test.cc), these sweep random shapes and
// verify a full forward/backward through realistic compositions.

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/layers.h"
#include "nn/ops.h"

namespace semtag::nn {
namespace {

struct Shape {
  size_t seq;
  size_t dim;
  size_t heads;
};

class ComposedGradcheckTest : public ::testing::TestWithParam<Shape> {};

la::Matrix RandomMatrix(size_t r, size_t c, Rng* rng) {
  la::Matrix m(r, c);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng->UniformDouble(-1, 1));
  }
  return m;
}

/// Numerically checks d(loss)/d(x) for a loss built by `forward`.
void CheckInputGradient(
    const la::Matrix& x,
    const std::function<Variable(const Variable&)>& forward,
    double tolerance = 5e-2) {
  Variable input(x, /*requires_grad=*/true);
  Variable loss = forward(input);
  ASSERT_EQ(loss.rows(), 1u);
  ASSERT_EQ(loss.cols(), 1u);
  Backward(loss);
  const la::Matrix grad = input.grad();

  const double h = 1e-2;
  Rng pick(123);
  // Probe a sample of elements (full sweep is covered per-op elsewhere).
  for (int probe = 0; probe < 10; ++probe) {
    const size_t i = pick.Uniform(x.size());
    la::Matrix xp = x;
    xp.data()[i] += static_cast<float>(h);
    la::Matrix xm = x;
    xm.data()[i] -= static_cast<float>(h);
    const double fp = forward(Variable(xp)).value()(0, 0);
    const double fm = forward(Variable(xm)).value()(0, 0);
    const double numeric = (fp - fm) / (2 * h);
    EXPECT_NEAR(grad.data()[i], numeric,
                tolerance * std::max(1.0, std::fabs(numeric)))
        << "element " << i;
  }
}

TEST_P(ComposedGradcheckTest, TransformerLayerLoss) {
  const Shape shape = GetParam();
  Rng rng(shape.seq * 100 + shape.dim);
  TransformerEncoderLayer layer(shape.dim, shape.heads, shape.dim * 2,
                                &rng);
  la::Matrix mask(shape.seq, shape.seq);
  const la::Matrix x = RandomMatrix(shape.seq, shape.dim, &rng);
  la::Matrix weights = RandomMatrix(shape.seq, shape.dim, &rng);
  CheckInputGradient(x, [&](const Variable& input) {
    Variable out = layer.Forward(input, mask, 0.0, &rng, false);
    return SumToScalar(Mul(out, Variable(weights)));
  });
}

TEST_P(ComposedGradcheckTest, LstmFinalHiddenLoss) {
  const Shape shape = GetParam();
  Rng rng(shape.seq * 7 + shape.dim);
  Lstm lstm(shape.dim, shape.dim, &rng);
  const la::Matrix x = RandomMatrix(shape.seq, shape.dim, &rng);
  la::Matrix weights = RandomMatrix(1, shape.dim, &rng);
  CheckInputGradient(x, [&](const Variable& input) {
    return SumToScalar(Mul(lstm.Forward(input), Variable(weights)));
  });
}

TEST_P(ComposedGradcheckTest, ConvPoolSoftmaxLoss) {
  const Shape shape = GetParam();
  Rng rng(shape.seq * 13 + shape.dim);
  ConvPool conv(2, shape.dim, 6, &rng);
  Linear head(6, 2, &rng);
  const la::Matrix x = RandomMatrix(shape.seq, shape.dim, &rng);
  CheckInputGradient(
      x,
      [&](const Variable& input) {
        Variable logits = head.Forward(conv.Forward(input));
        return SoftmaxCrossEntropy(logits, {1});
      },
      /*tolerance=*/8e-2);  // ReLU/max kinks make probes noisier
}

INSTANTIATE_TEST_SUITE_P(Shapes, ComposedGradcheckTest,
                         ::testing::Values(Shape{4, 8, 2}, Shape{6, 12, 3},
                                           Shape{9, 16, 4}));

}  // namespace
}  // namespace semtag::nn
