#include <gtest/gtest.h>

#include "nn/schedule.h"

namespace semtag::nn {
namespace {

TEST(ConstantLrTest, AlwaysSame) {
  ConstantLr schedule(0.01);
  for (int i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(schedule.Next(), 0.01);
  EXPECT_EQ(schedule.step(), 5);
}

TEST(WarmupLinearDecayTest, WarmsUpThenDecays) {
  WarmupLinearDecayLr schedule(1.0, 10, 110);
  // Warmup: strictly increasing, hits peak at step 10.
  double prev = 0.0;
  for (int s = 0; s < 10; ++s) {
    const double lr = schedule.At(s);
    EXPECT_GT(lr, prev);
    prev = lr;
  }
  EXPECT_DOUBLE_EQ(schedule.At(10), 1.0);
  // Decay: strictly decreasing to 0 at total_steps.
  EXPECT_LT(schedule.At(60), 1.0);
  EXPECT_GT(schedule.At(60), schedule.At(100));
  EXPECT_DOUBLE_EQ(schedule.At(110), 0.0);
  // Never negative past the end.
  EXPECT_DOUBLE_EQ(schedule.At(500), 0.0);
}

TEST(WarmupLinearDecayTest, MidpointsAreLinear) {
  WarmupLinearDecayLr schedule(2.0, 4, 104);
  EXPECT_NEAR(schedule.At(1), 2.0 * 2 / 4, 1e-12);
  EXPECT_NEAR(schedule.At(54), 2.0 * 0.5, 1e-12);
}

TEST(InverseTimeDecayTest, HalvesAtExpectedStep) {
  InverseTimeDecayLr schedule(0.5, 0.01);
  EXPECT_DOUBLE_EQ(schedule.At(0), 0.5);
  EXPECT_NEAR(schedule.At(100), 0.25, 1e-12);  // 1 + 0.01*100 = 2
  EXPECT_GT(schedule.At(10), schedule.At(20));
}

TEST(ScheduleTest, NextAdvancesState) {
  InverseTimeDecayLr schedule(1.0, 1.0);
  EXPECT_DOUBLE_EQ(schedule.Next(), 1.0);    // step 0
  EXPECT_DOUBLE_EQ(schedule.Next(), 0.5);    // step 1
  EXPECT_DOUBLE_EQ(schedule.Next(), 1.0 / 3);  // step 2
}

}  // namespace
}  // namespace semtag::nn
