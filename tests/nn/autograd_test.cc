// Numerical gradient checks for every differentiable op: perturb each input
// element, compare (f(x+h) - f(x-h)) / 2h against the autograd gradient of a
// scalar objective sum(op(x) * weights).

#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "la/init.h"
#include "nn/ops.h"
#include "nn/variable.h"

namespace semtag::nn {
namespace {

using la::Matrix;

Matrix RandomMatrix(size_t r, size_t c, Rng* rng, float scale = 1.0f) {
  Matrix m(r, c);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng->UniformDouble(-scale, scale));
  }
  return m;
}

/// Weighted sum of all elements: a generic scalar objective whose weights
/// make every output element matter differently.
Variable WeightedSum(const Variable& y, const Matrix& weights) {
  Variable w(weights);
  return SumToScalar(Mul(y, w));
}

/// Checks d(objective)/d(inputs[i]) numerically for every input element.
/// `forward` maps leaf Variables to the op output.
void CheckGradients(
    std::vector<Matrix> inputs,
    const std::function<Variable(const std::vector<Variable>&)>& forward,
    double tolerance = 2e-2, double h = 1e-3) {
  // Analytic pass.
  std::vector<Variable> vars;
  vars.reserve(inputs.size());
  for (auto& m : inputs) vars.emplace_back(m, /*requires_grad=*/true);
  Variable out = forward(vars);
  Rng wrng(12345);
  Matrix weights =
      RandomMatrix(out.value().rows(), out.value().cols(), &wrng);
  Variable loss = WeightedSum(out, weights);
  Backward(loss);

  // Numerical pass per element.
  for (size_t vi = 0; vi < inputs.size(); ++vi) {
    for (size_t i = 0; i < inputs[vi].size(); ++i) {
      auto eval = [&](float delta) {
        std::vector<Matrix> shifted = inputs;
        shifted[vi].data()[i] += delta;
        std::vector<Variable> leaf;
        leaf.reserve(shifted.size());
        for (auto& m : shifted) leaf.emplace_back(m, false);
        Variable y = forward(leaf);
        Matrix prod = y.value();
        prod.Mul(weights);
        return static_cast<double>(prod.Sum());
      };
      const double numeric =
          (eval(static_cast<float>(h)) - eval(static_cast<float>(-h))) /
          (2.0 * h);
      const double analytic = vars[vi].grad().data()[i];
      EXPECT_NEAR(analytic, numeric,
                  tolerance * std::max(1.0, std::fabs(numeric)))
          << "input " << vi << " element " << i;
    }
  }
}

TEST(AutogradTest, MatMul) {
  Rng rng(1);
  CheckGradients({RandomMatrix(3, 4, &rng), RandomMatrix(4, 2, &rng)},
                 [](const std::vector<Variable>& v) {
                   return MatMul(v[0], v[1]);
                 });
}

TEST(AutogradTest, MatMulBT) {
  Rng rng(2);
  CheckGradients({RandomMatrix(3, 4, &rng), RandomMatrix(5, 4, &rng)},
                 [](const std::vector<Variable>& v) {
                   return MatMulBT(v[0], v[1]);
                 });
}

TEST(AutogradTest, AddSubMul) {
  Rng rng(3);
  CheckGradients({RandomMatrix(2, 3, &rng), RandomMatrix(2, 3, &rng),
                  RandomMatrix(2, 3, &rng)},
                 [](const std::vector<Variable>& v) {
                   return Mul(Sub(Add(v[0], v[1]), v[2]), v[1]);
                 });
}

TEST(AutogradTest, ScalarMulAddConst) {
  Rng rng(4);
  Matrix c = RandomMatrix(2, 3, &rng);
  CheckGradients({RandomMatrix(2, 3, &rng)},
                 [c](const std::vector<Variable>& v) {
                   return AddConst(ScalarMul(v[0], 2.5f), c);
                 });
}

TEST(AutogradTest, AddRowBroadcast) {
  Rng rng(5);
  CheckGradients({RandomMatrix(4, 3, &rng), RandomMatrix(1, 3, &rng)},
                 [](const std::vector<Variable>& v) {
                   return AddRowBroadcast(v[0], v[1]);
                 });
}

TEST(AutogradTest, Activations) {
  Rng rng(6);
  CheckGradients({RandomMatrix(2, 5, &rng)},
                 [](const std::vector<Variable>& v) {
                   return Sigmoid(v[0]);
                 });
  CheckGradients({RandomMatrix(2, 5, &rng)},
                 [](const std::vector<Variable>& v) { return Tanh(v[0]); });
  CheckGradients({RandomMatrix(2, 5, &rng)},
                 [](const std::vector<Variable>& v) { return Gelu(v[0]); });
}

TEST(AutogradTest, ReluAwayFromKink) {
  // Keep inputs away from 0 so the numerical derivative is valid.
  Matrix x(2, 4);
  float vals[] = {0.5f, -0.7f, 1.2f, -2.0f, 0.9f, -0.4f, 2.2f, -1.1f};
  for (size_t i = 0; i < x.size(); ++i) x.data()[i] = vals[i];
  CheckGradients({x}, [](const std::vector<Variable>& v) {
    return Relu(v[0]);
  });
}

TEST(AutogradTest, RowSoftmax) {
  Rng rng(7);
  CheckGradients({RandomMatrix(3, 5, &rng, 2.0f)},
                 [](const std::vector<Variable>& v) {
                   return RowSoftmax(v[0]);
                 });
}

TEST(AutogradTest, SliceRowsAndCols) {
  Rng rng(8);
  CheckGradients({RandomMatrix(5, 6, &rng)},
                 [](const std::vector<Variable>& v) {
                   return SliceRows(v[0], 1, 4);
                 });
  CheckGradients({RandomMatrix(5, 6, &rng)},
                 [](const std::vector<Variable>& v) {
                   return SliceColsRange(v[0], 2, 5);
                 });
}

TEST(AutogradTest, ConcatCols) {
  Rng rng(9);
  CheckGradients({RandomMatrix(3, 2, &rng), RandomMatrix(3, 4, &rng)},
                 [](const std::vector<Variable>& v) {
                   return ConcatCols({v[0], v[1]});
                 });
}

TEST(AutogradTest, MaxPoolRows) {
  // Distinct values so the argmax is stable under the probe h.
  Matrix x(3, 2);
  x(0, 0) = 0.1f; x(0, 1) = 0.9f;
  x(1, 0) = 0.5f; x(1, 1) = 0.2f;
  x(2, 0) = -0.3f; x(2, 1) = 0.4f;
  CheckGradients({x}, [](const std::vector<Variable>& v) {
    return MaxPoolRows(v[0]);
  });
}

TEST(AutogradTest, MeanRows) {
  Rng rng(10);
  CheckGradients({RandomMatrix(4, 3, &rng)},
                 [](const std::vector<Variable>& v) {
                   return MeanRows(v[0]);
                 });
}

TEST(AutogradTest, EmbeddingAndGather) {
  Rng rng(11);
  const std::vector<int32_t> ids = {2, 0, 2, 1};
  CheckGradients({RandomMatrix(3, 4, &rng)},
                 [ids](const std::vector<Variable>& v) {
                   return EmbeddingLookup(v[0], ids);
                 });
  const std::vector<int32_t> rows = {1, 1, 3};
  CheckGradients({RandomMatrix(4, 3, &rng)},
                 [rows](const std::vector<Variable>& v) {
                   return GatherRows(v[0], rows);
                 });
}

TEST(AutogradTest, Conv1d) {
  Rng rng(12);
  const int width = 2;
  CheckGradients(
      {RandomMatrix(5, 3, &rng), RandomMatrix(6, 4, &rng),
       RandomMatrix(1, 4, &rng)},
      [width](const std::vector<Variable>& v) {
        return Conv1d(v[0], v[1], v[2], width);
      });
}

TEST(AutogradTest, Conv1dBlocked) {
  // Two stacked length-5 sequences convolved in one im2col GEMM.
  Rng rng(21);
  const int width = 2;
  CheckGradients(
      {RandomMatrix(10, 3, &rng), RandomMatrix(6, 4, &rng),
       RandomMatrix(1, 4, &rng)},
      [width](const std::vector<Variable>& v) {
        return Conv1d(v[0], v[1], v[2], width, /*blocks=*/2);
      });
}

TEST(AutogradTest, BlockMatMul) {
  // a: two stacked 3x4 blocks, b: two stacked 4x2 blocks.
  Rng rng(22);
  CheckGradients({RandomMatrix(6, 4, &rng), RandomMatrix(8, 2, &rng)},
                 [](const std::vector<Variable>& v) {
                   return BlockMatMul(v[0], v[1], /*blocks=*/2);
                 });
}

TEST(AutogradTest, BlockMatMulBT) {
  // a: two stacked 3x4 blocks, b: two stacked 5x4 blocks -> [6 x 5].
  Rng rng(23);
  CheckGradients({RandomMatrix(6, 4, &rng), RandomMatrix(10, 4, &rng)},
                 [](const std::vector<Variable>& v) {
                   return BlockMatMulBT(v[0], v[1], /*blocks=*/2);
                 });
}

TEST(AutogradTest, BlockOpsWithOneBlockMatchUnblockedBitwise) {
  // blocks=1 must route through the exact un-blocked arithmetic: the
  // batch-size-1 numeric contract rests on this.
  Rng rng(24);
  Matrix a = RandomMatrix(3, 4, &rng);
  Matrix b = RandomMatrix(4, 2, &rng);
  Matrix bt = RandomMatrix(5, 4, &rng);
  Variable va(a), vb(b), vbt(bt);
  Variable blocked = BlockMatMul(va, vb, 1);
  Variable plain = MatMul(va, vb);
  for (size_t i = 0; i < plain.value().size(); ++i) {
    EXPECT_EQ(blocked.value().data()[i], plain.value().data()[i]);
  }
  Variable blocked_bt = BlockMatMulBT(va, vbt, 1);
  Variable plain_bt = MatMulBT(va, vbt);
  for (size_t i = 0; i < plain_bt.value().size(); ++i) {
    EXPECT_EQ(blocked_bt.value().data()[i], plain_bt.value().data()[i]);
  }
}

TEST(AutogradTest, AddBlockBroadcast) {
  // x: two stacked 3x4 blocks, each gets the same 3x4 addend (the batched
  // position-table add).
  Rng rng(25);
  CheckGradients({RandomMatrix(6, 4, &rng), RandomMatrix(3, 4, &rng)},
                 [](const std::vector<Variable>& v) {
                   return AddBlockBroadcast(v[0], v[1]);
                 });
}

TEST(AutogradTest, MaxPoolRowsBlocked) {
  // Distinct values so the per-block argmax is stable under the probe h.
  Matrix x(6, 2);
  const float vals[] = {0.1f, 0.9f,  0.5f, 0.2f,  -0.3f, 0.4f,
                        0.7f, -0.8f, 0.2f, 0.6f,  -0.1f, 0.3f};
  for (size_t i = 0; i < x.size(); ++i) x.data()[i] = vals[i];
  CheckGradients({x}, [](const std::vector<Variable>& v) {
    return MaxPoolRows(v[0], /*blocks=*/2);
  });
}

TEST(AutogradTest, LayerNorm) {
  Rng rng(13);
  CheckGradients({RandomMatrix(3, 6, &rng), RandomMatrix(1, 6, &rng),
                  RandomMatrix(1, 6, &rng)},
                 [](const std::vector<Variable>& v) {
                   return LayerNorm(v[0], v[1], v[2]);
                 },
                 /*tolerance=*/5e-2);
}

TEST(AutogradTest, SoftmaxCrossEntropy) {
  Rng rng(14);
  const std::vector<int32_t> labels = {1, 0, 2};
  CheckGradients({RandomMatrix(3, 3, &rng, 2.0f)},
                 [labels](const std::vector<Variable>& v) {
                   return SoftmaxCrossEntropy(v[0], labels);
                 });
}

TEST(AutogradTest, EmbeddingDuplicateIdsAccumulate) {
  // The same row looked up twice must receive both gradient contributions.
  Matrix table(3, 2, 1.0f);
  Variable t(table, true);
  Variable out = EmbeddingLookup(t, {1, 1});
  Backward(SumToScalar(out));
  EXPECT_FLOAT_EQ(t.grad()(1, 0), 2.0f);
  EXPECT_FLOAT_EQ(t.grad()(0, 0), 0.0f);
}

TEST(AutogradTest, SoftmaxCrossEntropyStableWithHugeLogits) {
  Matrix logits(1, 3);
  logits(0, 0) = 1e4f;
  logits(0, 1) = -1e4f;
  logits(0, 2) = 0.0f;
  Variable x(logits, true);
  Variable loss = SoftmaxCrossEntropy(x, {0});
  EXPECT_TRUE(std::isfinite(loss.value()(0, 0)));
  EXPECT_NEAR(loss.value()(0, 0), 0.0f, 1e-4);
  Backward(loss);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(std::isfinite(x.grad().data()[i]));
  }
}

TEST(AutogradTest, ConcatColsSingleInputIsIdentity) {
  Rng rng(55);
  Matrix m = RandomMatrix(2, 3, &rng);
  Variable x(m, true);
  Variable y = ConcatCols({x});
  for (size_t i = 0; i < m.size(); ++i) {
    EXPECT_FLOAT_EQ(y.value().data()[i], m.data()[i]);
  }
  Backward(SumToScalar(y));
  for (size_t i = 0; i < m.size(); ++i) {
    EXPECT_FLOAT_EQ(x.grad().data()[i], 1.0f);
  }
}

TEST(AutogradTest, SliceRowsFullRangeIsIdentity) {
  Rng rng(56);
  Matrix m = RandomMatrix(4, 2, &rng);
  Variable x(m, true);
  Variable y = SliceRows(x, 0, 4);
  Backward(SumToScalar(y));
  for (size_t i = 0; i < m.size(); ++i) {
    EXPECT_FLOAT_EQ(y.value().data()[i], m.data()[i]);
    EXPECT_FLOAT_EQ(x.grad().data()[i], 1.0f);
  }
}

TEST(AutogradTest, GradAccumulatesAcrossBackwardCalls) {
  Variable x(Matrix(1, 1, 2.0f), true);
  for (int i = 0; i < 3; ++i) {
    Variable loss = SumToScalar(Mul(x, x));  // d/dx = 2x = 4
    Backward(loss);
  }
  EXPECT_FLOAT_EQ(x.grad()(0, 0), 12.0f);
  x.ZeroGrad();
  EXPECT_FLOAT_EQ(x.grad()(0, 0), 0.0f);
}

TEST(AutogradTest, NoGradForLeafInputs) {
  Variable x(Matrix(2, 2, 1.0f), false);
  Variable y = Sigmoid(x);
  EXPECT_FALSE(y.requires_grad());
}

TEST(AutogradTest, DiamondGraphSharedParent) {
  // x used twice: gradients from both paths must accumulate.
  Variable x(Matrix(1, 1, 3.0f), true);
  Variable y = Add(Mul(x, x), x);  // y = x^2 + x, dy/dx = 2x + 1 = 7
  Backward(SumToScalar(y));
  EXPECT_NEAR(x.grad()(0, 0), 7.0f, 1e-5);
}

TEST(AutogradTest, DropoutInference) {
  Rng rng(15);
  Variable x(Matrix(2, 3, 1.0f), true);
  Variable y = Dropout(x, 0.5, &rng, /*training=*/false);
  // Identity at inference.
  for (size_t i = 0; i < y.value().size(); ++i) {
    EXPECT_FLOAT_EQ(y.value().data()[i], 1.0f);
  }
}

TEST(AutogradTest, DropoutInferenceNeverTouchesRng) {
  // Inference callers pass no RNG at all; Dropout must not dereference it
  // (so batched and per-example inference consume zero random numbers).
  Variable x(Matrix(2, 3, 2.0f), true);
  Variable y = Dropout(x, 0.5, /*rng=*/nullptr, /*training=*/false);
  for (size_t i = 0; i < y.value().size(); ++i) {
    EXPECT_FLOAT_EQ(y.value().data()[i], 2.0f);
  }
}

TEST(AutogradTest, DropoutTrainingScalesKeptUnits) {
  Rng rng(16);
  Variable x(Matrix(1, 1000, 1.0f), true);
  Variable y = Dropout(x, 0.25, &rng, /*training=*/true);
  double sum = 0.0;
  int zeros = 0;
  for (size_t i = 0; i < y.value().size(); ++i) {
    const float v = y.value().data()[i];
    if (v == 0.0f) ++zeros;
    else EXPECT_NEAR(v, 1.0f / 0.75f, 1e-5);
    sum += v;
  }
  EXPECT_NEAR(zeros / 1000.0, 0.25, 0.06);
  EXPECT_NEAR(sum / 1000.0, 1.0, 0.08);  // inverted dropout keeps the mean
}

}  // namespace
}  // namespace semtag::nn
