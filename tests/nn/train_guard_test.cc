#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "common/fault.h"
#include "nn/optimizer.h"
#include "nn/train_guard.h"

namespace semtag::nn {
namespace {

constexpr float kNaN = std::numeric_limits<float>::quiet_NaN();

/// One 1x2 parameter with a controllable gradient.
struct Rig {
  Rig() {
    la::Matrix w(1, 2);
    w(0, 0) = 1.0f;
    w(0, 1) = -2.0f;
    param = Variable(w, /*requires_grad=*/true);
  }
  void SetGrad(float g0, float g1) {
    param.node()->grad = la::Matrix(1, 2);
    param.node()->grad(0, 0) = g0;
    param.node()->grad(0, 1) = g1;
  }
  Variable param;
};

class TrainGuardTest : public ::testing::Test {
 protected:
  void TearDown() override { ClearFaults(); }
};

TEST_F(TrainGuardTest, HealthyStepMatchesClipPlusStep) {
  // Two identical rigs: one stepped through the guard, one through the
  // plain ClipGradNorm+Step path the models used before. Bit-identical
  // updates are the invariant that keeps cached study results valid.
  Rig guarded, plain;
  Sgd opt_a({guarded.param}, 0.1f);
  Sgd opt_b({plain.param}, 0.1f);
  TrainGuardOptions options;
  options.clip_norm = 0.5f;  // force clipping so both paths exercise it
  options.context = "unit";
  TrainGuard guard(&opt_a, options);

  guarded.SetGrad(3.0f, 4.0f);
  plain.SetGrad(3.0f, 4.0f);
  ASSERT_TRUE(guard.Step(1.25f).ok());
  opt_b.ClipGradNorm(0.5f);
  opt_b.Step();
  EXPECT_EQ(guarded.param.value()(0, 0), plain.param.value()(0, 0));
  EXPECT_EQ(guarded.param.value()(0, 1), plain.param.value()(0, 1));
  EXPECT_EQ(guard.retries(), 0);
}

TEST_F(TrainGuardTest, NonFiniteLossRestoresSnapshotAndHalvesLr) {
  Rig rig;
  Sgd opt({rig.param}, 0.1f);
  TrainGuardOptions options;
  options.context = "unit";
  options.backoff_ms = 0;  // keep the test instant
  TrainGuard guard(&opt, options);

  rig.SetGrad(1.0f, 1.0f);
  ASSERT_TRUE(guard.Step(kNaN).ok());  // recovery, not failure
  EXPECT_EQ(guard.retries(), 1);
  EXPECT_FLOAT_EQ(opt.lr(), 0.05f);
  // Parameters rolled back to the snapshot taken at construction.
  EXPECT_FLOAT_EQ(rig.param.value()(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(rig.param.value()(0, 1), -2.0f);
  // And the poisoned gradients were cleared so the retry starts fresh.
  EXPECT_FLOAT_EQ(rig.param.grad()(0, 0), 0.0f);
}

TEST_F(TrainGuardTest, NonFiniteGradientIsDetected) {
  Rig rig;
  Sgd opt({rig.param}, 0.1f);
  TrainGuardOptions options;
  options.context = "unit";
  options.backoff_ms = 0;
  TrainGuard guard(&opt, options);

  rig.SetGrad(kNaN, 1.0f);
  ASSERT_TRUE(guard.Step(0.7f).ok());
  EXPECT_EQ(guard.retries(), 1);
  EXPECT_FLOAT_EQ(rig.param.value()(0, 0), 1.0f);  // no NaN leaked in
}

TEST_F(TrainGuardTest, ExhaustedRetriesReturnInternal) {
  Rig rig;
  Sgd opt({rig.param}, 0.1f);
  TrainGuardOptions options;
  options.context = "unit";
  options.max_retries = 2;
  options.backoff_ms = 0;
  TrainGuard guard(&opt, options);

  Status st = Status::OK();
  for (int i = 0; i < 3 && st.ok(); ++i) {
    rig.SetGrad(1.0f, 1.0f);
    st = guard.Step(kNaN);
  }
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_EQ(guard.retries(), 3);
  // Even after giving up, parameters hold the last-good snapshot.
  EXPECT_FLOAT_EQ(rig.param.value()(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(rig.param.value()(0, 1), -2.0f);
}

TEST_F(TrainGuardTest, RecoveryAfterFaultTrainsOn) {
  // A diverged step followed by healthy steps: training continues with
  // the halved learning rate.
  Rig rig;
  Sgd opt({rig.param}, 0.1f);
  TrainGuardOptions options;
  options.context = "unit";
  options.backoff_ms = 0;
  TrainGuard guard(&opt, options);

  rig.SetGrad(kNaN, 0.0f);
  ASSERT_TRUE(guard.Step(0.5f).ok());
  rig.SetGrad(1.0f, 0.0f);
  ASSERT_TRUE(guard.Step(0.4f).ok());
  // w0 = 1.0 - 0.05 * 1.0 (halved lr applied to the healthy step).
  EXPECT_FLOAT_EQ(rig.param.value()(0, 0), 0.95f);
  EXPECT_EQ(guard.retries(), 1);
}

TEST_F(TrainGuardTest, InjectedFaultsTriggerTheGuard) {
  ASSERT_TRUE(SetFaultsFromSpec("nan_loss:match=unit:count=1").ok());
  Rig rig;
  Sgd opt({rig.param}, 0.1f);
  TrainGuardOptions options;
  options.context = "unit";
  options.backoff_ms = 0;
  TrainGuard guard(&opt, options);

  rig.SetGrad(0.5f, 0.5f);
  ASSERT_TRUE(guard.Step(0.3f).ok());  // fault turns the loss into NaN
  EXPECT_EQ(guard.retries(), 1);
  EXPECT_EQ(FaultTriggerCount(FaultPoint::kNonFiniteLoss), 1);
  rig.SetGrad(0.5f, 0.5f);
  ASSERT_TRUE(guard.Step(0.3f).ok());  // count=1: next step is healthy
  EXPECT_EQ(guard.retries(), 1);
}

}  // namespace
}  // namespace semtag::nn
