#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/layers.h"
#include "nn/optimizer.h"

namespace semtag::nn {
namespace {

TEST(LinearTest, ShapesAndParameters) {
  Rng rng(1);
  Linear layer(4, 3, &rng);
  Variable x(la::Matrix(2, 4, 1.0f));
  Variable y = layer.Forward(x);
  EXPECT_EQ(y.rows(), 2u);
  EXPECT_EQ(y.cols(), 3u);
  std::vector<Variable> params;
  layer.CollectParameters(&params);
  EXPECT_EQ(params.size(), 2u);
}

TEST(ConvPoolTest, OutputIsSingleRow) {
  Rng rng(2);
  ConvPool conv(3, 8, 16, &rng);
  Variable x(la::Matrix(10, 8, 0.5f));
  Variable y = conv.Forward(x);
  EXPECT_EQ(y.rows(), 1u);
  EXPECT_EQ(y.cols(), 16u);
}

TEST(LstmTest, FinalHiddenShape) {
  Rng rng(3);
  Lstm lstm(8, 12, &rng);
  Variable x(la::Matrix(6, 8, 0.1f));
  Variable h = lstm.Forward(x);
  EXPECT_EQ(h.rows(), 1u);
  EXPECT_EQ(h.cols(), 12u);
  // Hidden state is bounded by tanh * sigmoid.
  for (size_t c = 0; c < h.cols(); ++c) {
    EXPECT_LT(std::fabs(h.value()(0, c)), 1.0f);
  }
}

TEST(LstmTest, GradientsFlowToAllParameters) {
  Rng rng(4);
  Lstm lstm(4, 6, &rng);
  la::Matrix xm(5, 4);
  for (size_t i = 0; i < xm.size(); ++i) {
    xm.data()[i] = static_cast<float>(rng.UniformDouble(-1, 1));
  }
  Variable x(xm, true);
  Variable h = lstm.Forward(x);
  Backward(SumToScalar(h));
  std::vector<Variable> params;
  lstm.CollectParameters(&params);
  for (auto& p : params) {
    ASSERT_TRUE(p.grad().SameShape(p.value()));
    EXPECT_GT(p.grad().Norm(), 0.0f);
  }
  EXPECT_GT(x.grad().Norm(), 0.0f);
}

TEST(GruTest, FinalHiddenShapeAndGradients) {
  Rng rng(21);
  Gru gru(6, 10, &rng);
  la::Matrix xm(5, 6);
  for (size_t i = 0; i < xm.size(); ++i) {
    xm.data()[i] = static_cast<float>(rng.UniformDouble(-1, 1));
  }
  Variable x(xm, true);
  Variable h = gru.Forward(x);
  EXPECT_EQ(h.rows(), 1u);
  EXPECT_EQ(h.cols(), 10u);
  Backward(SumToScalar(h));
  std::vector<Variable> params;
  gru.CollectParameters(&params);
  EXPECT_EQ(params.size(), 6u);
  for (auto& p : params) {
    ASSERT_TRUE(p.grad().SameShape(p.value()));
    EXPECT_GT(p.grad().Norm(), 0.0f);
  }
  EXPECT_GT(x.grad().Norm(), 0.0f);
}

TEST(GruTest, HiddenStateIsBounded) {
  Rng rng(22);
  Gru gru(4, 8, &rng);
  la::Matrix xm(12, 4, 3.0f);  // large inputs
  Variable h = gru.Forward(Variable(xm));
  for (size_t c = 0; c < h.cols(); ++c) {
    EXPECT_LE(std::fabs(h.value()(0, c)), 1.0f);  // convex combo of tanh
  }
}

TEST(AttentionTest, MaskBlocksPaddedKeys) {
  Rng rng(5);
  MultiHeadSelfAttention attention(8, 2, &rng);
  la::Matrix xm(4, 8);
  for (size_t i = 0; i < xm.size(); ++i) {
    xm.data()[i] = static_cast<float>(rng.UniformDouble(-1, 1));
  }
  // Mask key 3 for everyone.
  la::Matrix mask(4, 4);
  for (size_t i = 0; i < 4; ++i) mask(i, 3) = -1e9f;

  Variable x1(xm);
  Variable out1 = attention.Forward(x1, mask);

  // Perturb the masked position's input; outputs of other positions must
  // not change (they cannot attend to it).
  la::Matrix xm2 = xm;
  for (size_t c = 0; c < 8; ++c) xm2(3, c) += 5.0f;
  Variable x2(xm2);
  Variable out2 = attention.Forward(x2, mask);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 8; ++c) {
      EXPECT_NEAR(out1.value()(r, c), out2.value()(r, c), 1e-4)
          << "row " << r << " col " << c;
    }
  }
}

TEST(TransformerLayerTest, ShapePreservedAndTrainable) {
  Rng rng(6);
  TransformerEncoderLayer layer(8, 2, 16, &rng);
  la::Matrix xm(5, 8);
  for (size_t i = 0; i < xm.size(); ++i) {
    xm.data()[i] = static_cast<float>(rng.UniformDouble(-1, 1));
  }
  Variable x(xm, true);
  la::Matrix mask(5, 5);
  Variable y = layer.Forward(x, mask, 0.0, &rng, false);
  EXPECT_EQ(y.rows(), 5u);
  EXPECT_EQ(y.cols(), 8u);
  Backward(SumToScalar(y));
  std::vector<Variable> params;
  layer.CollectParameters(&params);
  EXPECT_GE(params.size(), 16u);  // attention + 2 norms + 2 ffn linears
  int with_grad = 0;
  for (auto& p : params) {
    if (p.grad().SameShape(p.value()) && p.grad().Norm() > 0.0f) {
      ++with_grad;
    }
  }
  EXPECT_GT(with_grad, 10);
}

TEST(TrainingTest, TinyNetworkLearnsXor) {
  // End-to-end sanity: a 2-layer MLP fits XOR with Adam.
  Rng rng(7);
  Linear l1(2, 8, &rng);
  Linear l2(8, 2, &rng);
  std::vector<Variable> params;
  l1.CollectParameters(&params);
  l2.CollectParameters(&params);
  Adam adam(params, 0.05f);

  const float inputs[4][2] = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  const std::vector<int32_t> targets = {0, 1, 1, 0};
  for (int step = 0; step < 300; ++step) {
    la::Matrix xm(4, 2);
    for (int i = 0; i < 4; ++i) {
      xm(static_cast<size_t>(i), 0) = inputs[i][0];
      xm(static_cast<size_t>(i), 1) = inputs[i][1];
    }
    Variable x(xm);
    Variable logits = l2.Forward(Tanh(l1.Forward(x)));
    Variable loss = SoftmaxCrossEntropy(logits, targets);
    Backward(loss);
    adam.Step();
    if (step == 299) {
      EXPECT_LT(loss.value()(0, 0), 0.1f);
    }
  }
}

}  // namespace
}  // namespace semtag::nn
