// Int8 inference tier accuracy contract (see DESIGN.md "Int8 inference
// tier"):
//  * SEMTAG_QUANT unset or =0 leaves scoring bit-identical to fp32 even
//    though the views are prepared at Train() time.
//  * SEMTAG_QUANT=1 routes deep-model scoring through the int8 kernels;
//    per-text score deltas vs fp32 stay small and the downstream F1 moves
//    by at most 0.2 points (the accuracy budget).
//  * The env var is re-read per call, so toggling it in-process flips the
//    path without retraining.

#include <cmath>
#include <cstdlib>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/generator.h"
#include "data/specs.h"
#include "models/deep/mini_bert.h"
#include "models/deep/text_cnn.h"
#include "models/deep/text_lstm.h"

namespace semtag::models {
namespace {

/// Max per-text |quant - fp32| score delta. Int8 weights+activations on
/// these small models perturb [0,1] scores by O(1e-2) in the worst case.
constexpr double kScoreTolerance = 0.12;
/// Accuracy budget on downstream F1 (0.2 points on the 0-100 scale).
constexpr double kF1Budget = 0.002;

/// Restores (or clears) SEMTAG_QUANT when leaving a scope so tests cannot
/// leak the quant tier into the rest of the suite.
class ScopedQuant {
 public:
  explicit ScopedQuant(const char* value) {
    const char* old = std::getenv("SEMTAG_QUANT");
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value != nullptr) {
      ::setenv("SEMTAG_QUANT", value, /*overwrite=*/1);
    } else {
      ::unsetenv("SEMTAG_QUANT");
    }
  }
  ~ScopedQuant() {
    if (had_old_) {
      ::setenv("SEMTAG_QUANT", old_.c_str(), /*overwrite=*/1);
    } else {
      ::unsetenv("SEMTAG_QUANT");
    }
  }

 private:
  bool had_old_ = false;
  std::string old_;
};

data::Dataset QuantDataset(int n, uint64_t seed = 177) {
  data::GeneratorConfig config;
  config.bg_vocab = 1500;
  config.signal_topic = 18;
  config.positive_topics = {19, 20};
  config.negative_topics = {21, 22};
  // Strong, low-leak signal: trained scores separate well away from the
  // 0.5 threshold, so the O(1e-2) int8 score perturbation does not flip
  // borderline predictions. That is the regime the 0.2-point F1 budget is
  // defined over (DESIGN.md); near-chance models amplify any noise source.
  config.signal_strength = 0.7;
  config.signal_leak = 0.05;
  config.avg_len = 12;
  config.seed = seed;
  return data::GenerateDataset(data::SharedLanguage(), config, "quant", n,
                               0.5);
}

double F1At05(const std::vector<double>& scores,
              const std::vector<int32_t>& labels) {
  int tp = 0, fp = 0, fn = 0;
  for (size_t i = 0; i < scores.size(); ++i) {
    const bool pred = scores[i] >= 0.5;
    if (pred && labels[i] == 1) {
      ++tp;
    } else if (pred) {
      ++fp;
    } else if (labels[i] == 1) {
      ++fn;
    }
  }
  if (tp == 0) return 0.0;
  const double prec = static_cast<double>(tp) / (tp + fp);
  const double rec = static_cast<double>(tp) / (tp + fn);
  return 2.0 * prec * rec / (prec + rec);
}

/// Scores `texts` under fp32 and int8 and checks the contract: off-path
/// bit-identity, bounded per-text deltas, bounded F1 movement, and that
/// the int8 path actually engaged (some score must move).
void ExpectQuantParity(const TaggingModel& model,
                       const std::vector<std::string>& texts,
                       const std::vector<int32_t>& labels) {
  std::vector<double> fp32, off, quant;
  {
    ScopedQuant env(nullptr);
    fp32 = model.ScoreAll(texts);
  }
  {
    ScopedQuant env("0");
    off = model.ScoreAll(texts);
  }
  {
    ScopedQuant env("1");
    quant = model.ScoreAll(texts);
  }
  ASSERT_EQ(fp32.size(), texts.size());
  ASSERT_EQ(quant.size(), texts.size());
  bool any_moved = false;
  for (size_t i = 0; i < texts.size(); ++i) {
    EXPECT_EQ(off[i], fp32[i])
        << model.name() << ": SEMTAG_QUANT=0 must be bit-identical, text "
        << i;
    EXPECT_NEAR(quant[i], fp32[i], kScoreTolerance)
        << model.name() << " text " << i;
    if (quant[i] != fp32[i]) any_moved = true;
  }
  EXPECT_TRUE(any_moved)
      << model.name()
      << ": int8 path produced bit-identical scores — routing is likely "
         "not engaging";
  const double f1_fp32 = F1At05(fp32, labels);
  const double f1_quant = F1At05(quant, labels);
  EXPECT_NEAR(f1_quant, f1_fp32, kF1Budget)
      << model.name() << ": F1 moved more than 0.2 points (fp32 "
      << f1_fp32 * 100 << " vs int8 " << f1_quant * 100 << ")";
}

TEST(QuantParityTest, TextCnnQuantScoresTrackFp32) {
  CnnOptions options;
  options.max_len = 12;
  options.embed_dim = 16;
  options.filters_per_width = 8;
  options.epochs = 4;
  options.min_optimizer_steps = 1;
  options.max_train_examples = 300;
  TextCnn model(options);
  // A large test split keeps the F1 granularity (one flipped prediction)
  // well under the 0.2-point budget being pinned.
  data::Dataset d = QuantDataset(2500);
  auto [train, test] = d.Split(0.12);
  {
    ScopedQuant env(nullptr);  // train in fp32 regardless of ambient env
    ASSERT_TRUE(model.Train(train).ok());
  }
  ExpectQuantParity(model, test.Texts(), test.Labels());
}

TEST(QuantParityTest, TextLstmAndGruQuantScoresTrackFp32) {
  LstmOptions lstm_options;
  lstm_options.max_len = 12;
  lstm_options.embed_dim = 16;
  lstm_options.hidden_dim = 16;
  lstm_options.epochs = 3;
  lstm_options.min_optimizer_steps = 1;
  lstm_options.max_train_examples = 200;
  TextLstm lstm(lstm_options);

  LstmOptions gru_options = lstm_options;
  gru_options.cell = RnnCell::kGru;
  TextLstm gru(gru_options);

  data::Dataset d = QuantDataset(500, 178);
  auto [train, test] = d.Split(0.4);
  for (TaggingModel* model :
       {static_cast<TaggingModel*>(&lstm), static_cast<TaggingModel*>(&gru)}) {
    {
      ScopedQuant env(nullptr);
      ASSERT_TRUE(model->Train(train).ok()) << model->name();
    }
    ExpectQuantParity(*model, test.Texts(), test.Labels());
  }
}

TEST(QuantParityTest, MiniBertQuantScoresTrackFp32) {
  BertConfig config;
  config.max_len = 12;
  config.dim = 16;
  config.heads = 2;
  config.ffn = 32;
  config.layers = 2;
  config.seed = 9;
  const auto corpus =
      data::GeneratePretrainCorpus(data::SharedLanguage(), 250, 10, 91);
  text::VocabularyBuilder builder;
  for (const auto& s : corpus) builder.AddDocument(text::Tokenize(s));
  MiniBertBackbone backbone(config, builder.Build(1, 4000));
  PretrainOptions pretrain;
  pretrain.epochs = 1;
  {
    ScopedQuant env(nullptr);
    backbone.Pretrain(corpus, pretrain);
  }

  BertFinetuneOptions options;
  options.epochs = 1;
  options.max_train_examples = 150;
  MiniBert model("BERT", backbone, options);
  data::Dataset d = QuantDataset(450, 179);
  auto [train, test] = d.Split(0.4);
  {
    ScopedQuant env(nullptr);
    ASSERT_TRUE(model.Train(train).ok());
  }
  ExpectQuantParity(model, test.Texts(), test.Labels());
}

TEST(QuantParityTest, ToggleIsPerCallWithoutRetraining) {
  CnnOptions options;
  options.max_len = 12;
  options.embed_dim = 8;
  options.filters_per_width = 4;
  options.epochs = 1;
  options.min_optimizer_steps = 1;
  options.max_train_examples = 80;
  TextCnn model(options);
  data::Dataset d = QuantDataset(120, 180);
  {
    ScopedQuant env(nullptr);
    ASSERT_TRUE(model.Train(d).ok());
  }
  const std::string text = d.Texts().front();
  double fp32_score, quant_score, fp32_again;
  {
    ScopedQuant env(nullptr);
    fp32_score = model.Score(text);
  }
  {
    ScopedQuant env("1");
    quant_score = model.Score(text);
  }
  {
    ScopedQuant env(nullptr);
    fp32_again = model.Score(text);
  }
  EXPECT_EQ(fp32_score, fp32_again);
  EXPECT_NEAR(quant_score, fp32_score, kScoreTolerance);
}

}  // namespace
}  // namespace semtag::models
