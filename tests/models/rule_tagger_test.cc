#include <gtest/gtest.h>

#include "data/generator.h"
#include "data/specs.h"
#include "eval/metrics.h"
#include "models/simple/rule_tagger.h"

namespace semtag::models {
namespace {

TEST(RuleTaggerTest, ManualKeywordsTag) {
  RuleTagger tagger;
  tagger.AddKeyword("tip");
  tagger.AddKeyword("recommend");
  EXPECT_EQ(tagger.Predict("i recommend the soup"), 1);
  EXPECT_EQ(tagger.Predict("the soup was fine"), 0);
  EXPECT_GT(tagger.Score("tip tip tip"), tagger.Score("one tip here yes"));
}

TEST(RuleTaggerTest, EmptyTextScoresZero) {
  RuleTagger tagger;
  tagger.AddKeyword("x");
  EXPECT_DOUBLE_EQ(tagger.Score(""), 0.0);
  EXPECT_EQ(tagger.Predict(""), 0);
}

TEST(RuleTaggerTest, InducesKeywordsFromData) {
  data::GeneratorConfig config;
  config.bg_vocab = 2000;
  config.signal_topic = 16;
  config.positive_topics = {17, 18};
  config.negative_topics = {19, 20};
  config.signal_strength = 0.35;
  config.signal_leak = 0.1;
  config.seed = 71;
  data::Dataset d = data::GenerateDataset(data::SharedLanguage(), config,
                                          "rules", 800, 0.5);
  auto [train, test] = d.Split(0.8);
  RuleTagger tagger;
  ASSERT_TRUE(tagger.Train(train).ok());
  EXPECT_FALSE(tagger.keywords().empty());
  // Rules work, but clearly below learned models on the same task
  // (Section 1's point): decent but not great F1.
  const double f1 =
      eval::F1Score(test.Labels(), tagger.PredictAll(test.Texts()));
  EXPECT_GT(f1, 0.5);
}

TEST(RuleTaggerTest, FailsWhenNoTokenQualifies) {
  data::Dataset flat("flat");
  // Identical text in both classes: no informative token exists.
  for (int i = 0; i < 40; ++i) {
    flat.Add(data::Example{"same words every time", i % 2, i % 2});
  }
  RuleTagger tagger;
  EXPECT_EQ(tagger.Train(flat).code(), StatusCode::kFailedPrecondition);
}

TEST(RuleTaggerTest, ManualKeywordsSurviveTraining) {
  data::Dataset tiny("tiny");
  for (int i = 0; i < 20; ++i) {
    tiny.Add(data::Example{i % 2 ? "alpha beta" : "gamma delta", i % 2,
                           i % 2});
  }
  RuleTagger tagger;
  tagger.AddKeyword("customword");
  ASSERT_TRUE(tagger.Train(tiny).ok());
  EXPECT_TRUE(tagger.keywords().count("customword"));
  EXPECT_TRUE(tagger.keywords().count("alpha"));
}

}  // namespace
}  // namespace semtag::models
