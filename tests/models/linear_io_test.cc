#include <cmath>
#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "common/csv.h"
#include "data/generator.h"
#include "data/specs.h"
#include "models/simple/linear_svm.h"
#include "models/simple/logistic_regression.h"

namespace semtag::models {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

data::Dataset EasyDataset(int n, uint64_t seed = 88) {
  data::GeneratorConfig config;
  config.bg_vocab = 1800;
  config.signal_topic = 22;
  config.positive_topics = {23, 24};
  config.negative_topics = {25, 26};
  config.signal_strength = 0.35;
  config.seed = seed;
  return data::GenerateDataset(data::SharedLanguage(), config, "io", n,
                               0.5);
}

TEST(LinearIoTest, LrSaveLoadRoundTrip) {
  data::Dataset d = EasyDataset(400);
  LogisticRegression model;
  ASSERT_TRUE(model.Train(d).ok());
  const std::string path = TempPath("semtag_lr_model.txt");
  ASSERT_TRUE(model.Save(path).ok());

  auto loaded = LogisticRegression::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_features(), model.num_features());
  for (int i = 0; i < 20; ++i) {
    const std::string& text = d[static_cast<size_t>(i)].text;
    EXPECT_NEAR(loaded->Score(text), model.Score(text), 1e-5) << text;
  }
  std::remove(path.c_str());
}

TEST(LinearIoTest, SvmSaveLoadRoundTrip) {
  data::Dataset d = EasyDataset(400, 91);
  LinearSvm model;
  ASSERT_TRUE(model.Train(d).ok());
  const std::string path = TempPath("semtag_svm_model.txt");
  ASSERT_TRUE(model.Save(path).ok());
  auto loaded = LinearSvm::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_DOUBLE_EQ(loaded->DecisionThreshold(), 0.0);
  for (int i = 0; i < 20; ++i) {
    const std::string& text = d[static_cast<size_t>(i)].text;
    EXPECT_NEAR(loaded->Score(text), model.Score(text), 1e-4);
  }
  std::remove(path.c_str());
}

TEST(LinearIoTest, ModelTypeMismatchRejected) {
  data::Dataset d = EasyDataset(200, 93);
  LogisticRegression lr;
  ASSERT_TRUE(lr.Train(d).ok());
  const std::string path = TempPath("semtag_lr_as_svm.txt");
  ASSERT_TRUE(lr.Save(path).ok());
  EXPECT_FALSE(LinearSvm::Load(path).ok());
  std::remove(path.c_str());
}

TEST(LinearIoTest, UntrainedSaveFails) {
  LogisticRegression model;
  EXPECT_EQ(model.Save(TempPath("nope.txt")).code(),
            StatusCode::kFailedPrecondition);
}

TEST(LinearIoTest, CorruptFileRejected) {
  const std::string path = TempPath("semtag_corrupt_model.txt");
  ASSERT_TRUE(WriteStringToFile(path, "not a model at all").ok());
  EXPECT_FALSE(LogisticRegression::Load(path).ok());
  ASSERT_TRUE(WriteStringToFile(
                  path, "semtag-linear-model v1\nmodel LR\ngarbage").ok());
  EXPECT_FALSE(LogisticRegression::Load(path).ok());
  std::remove(path.c_str());
}

TEST(LinearIoTest, ExplainSurfacesSignalWords) {
  data::Dataset d = EasyDataset(600, 95);
  LogisticRegression model;
  ASSERT_TRUE(model.Train(d).ok());
  // A strongly positive text should have positive top contributions.
  std::string positive_text;
  for (const auto& e : d.examples()) {
    if (e.label == 1 && model.Score(e.text) > 0.9) {
      positive_text = e.text;
      break;
    }
  }
  ASSERT_FALSE(positive_text.empty());
  const auto contributions = model.Explain(positive_text, 5);
  ASSERT_FALSE(contributions.empty());
  EXPECT_LE(contributions.size(), 5u);
  // Sorted by magnitude; the top one should push positive.
  EXPECT_GT(contributions[0].contribution, 0.0);
  for (size_t i = 1; i < contributions.size(); ++i) {
    EXPECT_GE(std::fabs(contributions[i - 1].contribution),
              std::fabs(contributions[i].contribution));
  }
}

TEST(LinearIoTest, ExplainOnUnknownTextIsEmpty) {
  data::Dataset d = EasyDataset(200, 97);
  LinearSvm model;
  ASSERT_TRUE(model.Train(d).ok());
  EXPECT_TRUE(model.Explain("zzzz qqqq xxxx", 5).empty());
}

}  // namespace
}  // namespace semtag::models
