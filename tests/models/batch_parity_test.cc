// Batched-execution contract (see DESIGN.md "Batched execution"):
//  * ScoreBatch must agree with per-example Score for every model kind.
//  * Results must be batch-size-invariant: SEMTAG_DEEP_BATCH in {1, 4, 32}
//    scores the same texts to the documented tolerance.
//  * SEMTAG_DEEP_BATCH=1 forces the per-example path and is bit-identical.

#include <cmath>
#include <cstdlib>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/generator.h"
#include "data/specs.h"
#include "models/deep/embedding_models.h"
#include "models/deep/mini_bert.h"
#include "models/deep/text_cnn.h"
#include "models/deep/text_lstm.h"
#include "models/factory.h"

namespace semtag::models {
namespace {

// The stacked deep forward reorders no per-row arithmetic (row-wise GEMMs,
// per-row softmax/layer-norm), so batched scores track per-example scores
// far tighter than this; the documented contract is 1e-5 on [0,1] scores.
constexpr double kBatchTolerance = 1e-5;

/// Restores (or clears) SEMTAG_DEEP_BATCH when leaving a scope so tests
/// cannot leak the cap into the rest of the suite.
class ScopedDeepBatch {
 public:
  explicit ScopedDeepBatch(const char* value) {
    const char* old = std::getenv("SEMTAG_DEEP_BATCH");
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value != nullptr) {
      ::setenv("SEMTAG_DEEP_BATCH", value, /*overwrite=*/1);
    } else {
      ::unsetenv("SEMTAG_DEEP_BATCH");
    }
  }
  ~ScopedDeepBatch() {
    if (had_old_) {
      ::setenv("SEMTAG_DEEP_BATCH", old_.c_str(), /*overwrite=*/1);
    } else {
      ::unsetenv("SEMTAG_DEEP_BATCH");
    }
  }

 private:
  bool had_old_ = false;
  std::string old_;
};

data::Dataset SmallDataset(int n, uint64_t seed = 77) {
  data::GeneratorConfig config;
  config.bg_vocab = 1500;
  config.signal_topic = 18;
  config.positive_topics = {19, 20};
  config.negative_topics = {21, 22};
  config.signal_strength = 0.4;
  config.signal_leak = 0.1;
  config.avg_len = 12;
  config.seed = seed;
  return data::GenerateDataset(data::SharedLanguage(), config, "parity", n,
                               0.5);
}

void ExpectBatchMatchesPerExample(const TaggingModel& model,
                                  const std::vector<std::string>& texts,
                                  double tolerance) {
  const std::vector<double> batched =
      model.ScoreBatch(std::span<const std::string>(texts));
  ASSERT_EQ(batched.size(), texts.size());
  for (size_t i = 0; i < texts.size(); ++i) {
    EXPECT_NEAR(batched[i], model.Score(texts[i]), tolerance)
        << model.name() << " text " << i;
  }
}

TEST(BatchParityTest, FactoryModelsScoreBatchMatchesScore) {
  // Transformer kinds are covered by the fixture below (creating them via
  // the factory pulls the shared pretrained backbone, which the bench
  // suite owns).
  const ModelKind kinds[] = {ModelKind::kLr,  ModelKind::kSvm,
                             ModelKind::kCnn, ModelKind::kLstm,
                             ModelKind::kNaiveBayes, ModelKind::kXgboost};
  data::Dataset d = SmallDataset(220);
  auto [train, test] = d.Split(0.75);
  const auto texts = test.Texts();
  for (ModelKind kind : kinds) {
    auto model = CreateModelSeeded(kind, 5);
    ASSERT_TRUE(model->Train(train).ok()) << ModelKindName(kind);
    ExpectBatchMatchesPerExample(*model, texts, kBatchTolerance);
  }
}

class BatchParityBertTest : public ::testing::Test {
 protected:
  static MiniBertBackbone* Backbone() {
    static MiniBertBackbone* backbone = [] {
      BertConfig config;
      config.max_len = 12;
      config.dim = 16;
      config.heads = 2;
      config.ffn = 32;
      config.layers = 2;
      config.seed = 9;
      const auto corpus = data::GeneratePretrainCorpus(
          data::SharedLanguage(), 250, 10, 91);
      text::VocabularyBuilder builder;
      for (const auto& s : corpus) builder.AddDocument(text::Tokenize(s));
      auto* b = new MiniBertBackbone(config, builder.Build(1, 4000));
      PretrainOptions pretrain;
      pretrain.epochs = 1;
      b->Pretrain(corpus, pretrain);
      return b;
    }();
    return backbone;
  }
};

TEST_F(BatchParityBertTest, EncodeBatchMatchesPerSequenceEncode) {
  const MiniBertBackbone* backbone = Backbone();
  const std::vector<std::string> texts = {
      "alpha beta gamma", "one ordinary sentence about a topic",
      "short", "a slightly longer sentence that will be truncated by pad"};
  std::vector<std::vector<int32_t>> ids;
  std::vector<const std::vector<int32_t>*> ptrs;
  for (const auto& t : texts) ids.push_back(backbone->EncodeIds(t));
  for (const auto& v : ids) ptrs.push_back(&v);
  nn::Variable batched =
      backbone->EncodeBatch(ptrs, /*rng=*/nullptr, /*training=*/false);
  const size_t T = static_cast<size_t>(backbone->config().max_len);
  ASSERT_EQ(batched.value().rows(), texts.size() * T);
  for (size_t s = 0; s < texts.size(); ++s) {
    nn::Variable single =
        backbone->Encode(ids[s], /*rng=*/nullptr, /*training=*/false);
    for (size_t r = 0; r < T; ++r) {
      for (size_t c = 0; c < batched.value().cols(); ++c) {
        EXPECT_NEAR(batched.value().At(s * T + r, c),
                    single.value().At(r, c), 1e-5)
            << "sequence " << s << " row " << r << " col " << c;
      }
    }
  }
}

TEST_F(BatchParityBertTest, MiniBertScoreBatchAndEmbedBatchMatch) {
  BertFinetuneOptions options;
  options.epochs = 1;
  options.max_train_examples = 80;
  MiniBert model("BERT", *Backbone(), options);
  data::Dataset d = SmallDataset(120, 78);
  ASSERT_TRUE(model.Train(d).ok());
  const auto texts = d.Texts();
  ExpectBatchMatchesPerExample(model, texts, kBatchTolerance);

  const auto batched = model.EmbedTextBatch(
      std::span<const std::string>(texts.data(), 5));
  ASSERT_EQ(batched.size(), 5u);
  for (size_t i = 0; i < batched.size(); ++i) {
    const auto single = model.EmbedText(texts[i]);
    ASSERT_EQ(batched[i].size(), single.size());
    for (size_t j = 0; j < single.size(); ++j) {
      EXPECT_NEAR(batched[i][j], single[j], 1e-5) << i << "," << j;
    }
  }
}

TEST_F(BatchParityBertTest, EmbeddingLinearModelsScoreBatchMatches) {
  data::Dataset d = SmallDataset(100, 79);
  auto [train, test] = d.Split(0.8);
  EmbeddingLinearModel lr("LR+eb", Backbone());
  ASSERT_TRUE(lr.Train(train).ok());
  ExpectBatchMatchesPerExample(lr, test.Texts(), kBatchTolerance);

  EmbeddingLinearOptions svm_options;
  svm_options.hinge = true;
  EmbeddingLinearModel svm("SVM+eb", Backbone(), svm_options);
  ASSERT_TRUE(svm.Train(train).ok());
  // Hinge scores are raw margins, not [0,1]; scale the tolerance.
  ExpectBatchMatchesPerExample(svm, test.Texts(), 1e-4);
}

TEST_F(BatchParityBertTest, DeepBatchOneIsBitIdenticalToScore) {
  BertFinetuneOptions options;
  options.epochs = 1;
  options.max_train_examples = 60;
  MiniBert model("BERT", *Backbone(), options);
  data::Dataset d = SmallDataset(80, 80);
  ASSERT_TRUE(model.Train(d).ok());
  ScopedDeepBatch env("1");
  const auto texts = d.Texts();
  const auto batched = model.ScoreBatch(std::span<const std::string>(texts));
  ASSERT_EQ(batched.size(), texts.size());
  for (size_t i = 0; i < texts.size(); ++i) {
    EXPECT_EQ(batched[i], model.Score(texts[i])) << "text " << i;
  }
}

TEST(BatchParityTest, DeepScoresAreBatchSizeInvariant) {
  CnnOptions cnn_options;
  cnn_options.max_len = 12;
  cnn_options.embed_dim = 16;
  cnn_options.filters_per_width = 8;
  cnn_options.epochs = 1;
  cnn_options.min_optimizer_steps = 1;
  cnn_options.max_train_examples = 100;
  auto cnn = std::make_unique<TextCnn>(cnn_options);

  LstmOptions lstm_options;
  lstm_options.max_len = 12;
  lstm_options.embed_dim = 16;
  lstm_options.hidden_dim = 16;
  lstm_options.epochs = 1;
  lstm_options.min_optimizer_steps = 1;
  lstm_options.max_train_examples = 100;
  auto lstm = std::make_unique<TextLstm>(lstm_options);

  LstmOptions gru_options = lstm_options;
  gru_options.cell = RnnCell::kGru;
  auto gru = std::make_unique<TextLstm>(gru_options);

  data::Dataset d = SmallDataset(140, 81);
  const auto texts = d.Texts();
  for (TaggingModel* model :
       {static_cast<TaggingModel*>(cnn.get()),
        static_cast<TaggingModel*>(lstm.get()),
        static_cast<TaggingModel*>(gru.get())}) {
    ASSERT_TRUE(model->Train(d).ok()) << model->name();
    std::vector<double> reference;
    {
      ScopedDeepBatch env("1");  // per-example path (bit-identical seed)
      reference = model->ScoreBatch(std::span<const std::string>(texts));
    }
    const char* caps[] = {"4", "32", nullptr};
    for (const char* cap : caps) {
      ScopedDeepBatch env(cap);
      const auto scores =
          model->ScoreBatch(std::span<const std::string>(texts));
      ASSERT_EQ(scores.size(), reference.size());
      for (size_t i = 0; i < scores.size(); ++i) {
        EXPECT_NEAR(scores[i], reference[i], kBatchTolerance)
            << model->name() << " cap=" << (cap ? cap : "unset")
            << " text " << i;
      }
    }
  }
}

TEST(BatchParityTest, ScoreAllRoutesThroughBatchedPath) {
  CnnOptions options;
  options.max_len = 12;
  options.embed_dim = 8;
  options.filters_per_width = 4;
  options.epochs = 1;
  options.min_optimizer_steps = 1;
  options.max_train_examples = 80;
  TextCnn model(options);
  data::Dataset d = SmallDataset(100, 82);
  ASSERT_TRUE(model.Train(d).ok());
  const auto texts = d.Texts();
  const auto all = model.ScoreAll(texts);
  ASSERT_EQ(all.size(), texts.size());
  for (size_t i = 0; i < texts.size(); ++i) {
    EXPECT_NEAR(all[i], model.Score(texts[i]), kBatchTolerance)
        << "text " << i;
  }
}

}  // namespace
}  // namespace semtag::models
