// Unified probability/margin scale (model.h ProbabilityFromScore): every
// family maps its raw Score() onto one P(y=1) scale — probabilistic
// families pass through clamped, margin families (SVM's hyperplane
// distance, the rule tagger) get a unit-slope Platt squash centred on
// their decision boundary. The contract under test, per family:
//  * strictly monotone in the score (no confidence inversions),
//  * range [0, 1],
//  * decision-preserving: p >= 0.5 iff score >= DecisionThreshold(),
//  * margin |2p - 1| in [0, 1], 0 exactly at the boundary, symmetric.

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/generator.h"
#include "data/specs.h"
#include "models/factory.h"
#include "models/model.h"
#include "models/simple/linear_svm.h"
#include "models/simple/logistic_regression.h"
#include "models/simple/naive_bayes.h"

namespace semtag::models {
namespace {

/// Scores straddling every family's boundary: margins in [-6, 6],
/// probabilities in [0, 1] (out-of-range raw values clamp).
std::vector<double> ScoreGrid(double boundary) {
  std::vector<double> grid;
  for (int i = -24; i <= 24; ++i) grid.push_back(boundary + i * 0.25);
  return grid;
}

void ExpectUnifiedScaleContract(const TaggingModel& model) {
  const double boundary = model.DecisionThreshold();
  const std::vector<double> grid = ScoreGrid(boundary);
  double prev = -1.0;
  for (double score : grid) {
    const double p = model.ProbabilityFromScore(score);
    EXPECT_GE(p, 0.0) << model.name() << " score " << score;
    EXPECT_LE(p, 1.0) << model.name() << " score " << score;
    // Monotone (strictly, except where the pass-through clamps).
    EXPECT_GE(p, prev) << model.name() << " score " << score;
    if (boundary != 0.5 || (score > 0.0 && score < 1.0)) {
      EXPECT_GT(p, prev) << model.name() << " not strict at " << score;
    }
    prev = p;
    // Decision preservation.
    EXPECT_EQ(p >= 0.5, score >= boundary)
        << model.name() << " decision flipped at score " << score;
    // Margin range and consistency with the probability.
    const double margin = model.MarginFromScore(score);
    EXPECT_GE(margin, 0.0) << model.name();
    EXPECT_LE(margin, 1.0) << model.name();
    EXPECT_DOUBLE_EQ(margin, std::abs(2.0 * p - 1.0)) << model.name();
  }
  // Exactly at the boundary: maximally uncertain.
  EXPECT_DOUBLE_EQ(model.ProbabilityFromScore(boundary), 0.5)
      << model.name();
  EXPECT_DOUBLE_EQ(model.MarginFromScore(boundary), 0.0) << model.name();
  // Symmetric about the boundary.
  for (double d : {0.1, 0.5, 2.0}) {
    if (boundary == 0.5 && d > 0.5) continue;  // outside the [0,1] domain
    EXPECT_NEAR(model.MarginFromScore(boundary + d),
                model.MarginFromScore(boundary - d), 1e-12)
        << model.name() << " asymmetric at +/-" << d;
  }
}

TEST(MarginTest, ProbabilisticFamiliesPassThroughClamped) {
  // NB and LR already emit P(y=1); the unified scale must not distort it.
  for (ModelKind kind : {ModelKind::kNaiveBayes, ModelKind::kLr,
                         ModelKind::kXgboost}) {
    auto model = CreateModelSeeded(kind, 1);
    ASSERT_NE(model, nullptr);
    ASSERT_EQ(model->DecisionThreshold(), 0.5) << ModelKindName(kind);
    EXPECT_DOUBLE_EQ(model->ProbabilityFromScore(0.3), 0.3);
    EXPECT_DOUBLE_EQ(model->ProbabilityFromScore(0.99), 0.99);
    EXPECT_DOUBLE_EQ(model->ProbabilityFromScore(-0.2), 0.0);  // clamped
    EXPECT_DOUBLE_EQ(model->ProbabilityFromScore(1.7), 1.0);   // clamped
    ExpectUnifiedScaleContract(*model);
  }
}

TEST(MarginTest, MarginFamiliesGetPlattSquash) {
  LinearSvm svm;
  ASSERT_EQ(svm.DecisionThreshold(), 0.0);
  // sigmoid(score - 0): 0.5 at the hyperplane, saturating either side.
  EXPECT_DOUBLE_EQ(svm.ProbabilityFromScore(0.0), 0.5);
  EXPECT_NEAR(svm.ProbabilityFromScore(2.0), 1.0 / (1.0 + std::exp(-2.0)),
              1e-12);
  EXPECT_GT(svm.ProbabilityFromScore(6.0), 0.99);
  EXPECT_LT(svm.ProbabilityFromScore(-6.0), 0.01);
  ExpectUnifiedScaleContract(svm);
}

data::Dataset MarginDataset(int n, uint64_t seed) {
  data::GeneratorConfig config;
  config.bg_vocab = 1500;
  config.signal_topic = 30;
  config.positive_topics = {31, 32};
  config.negative_topics = {33, 34};
  config.signal_strength = 0.4;
  config.seed = seed;
  return data::GenerateDataset(data::SharedLanguage(), config, "margin", n,
                               0.5);
}

TEST(MarginTest, TrainedModelsAgreeAcrossScoreAndTextPaths) {
  data::Dataset d = MarginDataset(300, 61);
  auto [train, test] = d.Split(0.8);
  for (ModelKind kind :
       {ModelKind::kNaiveBayes, ModelKind::kLr, ModelKind::kSvm}) {
    auto model = CreateModelSeeded(kind, 2);
    ASSERT_TRUE(model->Train(train).ok()) << ModelKindName(kind);
    for (const auto& text : test.Texts()) {
      const double score = model->Score(text);
      EXPECT_DOUBLE_EQ(model->Probability(text),
                       model->ProbabilityFromScore(score))
          << ModelKindName(kind);
      EXPECT_DOUBLE_EQ(model->Margin(text), model->MarginFromScore(score))
          << ModelKindName(kind);
      // Predict() and the probability boundary agree on every example.
      EXPECT_EQ(model->Predict(text), model->Probability(text) >= 0.5)
          << ModelKindName(kind);
    }
  }
}

TEST(MarginTest, MarginsSeparateConfidentFromBoundaryExamples) {
  // On separable data a trained LR puts higher margins on examples it
  // scores away from 0.5 — the property the cascade's threshold relies on.
  data::Dataset d = MarginDataset(400, 62);
  auto [train, test] = d.Split(0.8);
  LogisticRegression lr;
  ASSERT_TRUE(lr.Train(train).ok());
  double confident = 0.0, total = 0.0;
  for (const auto& text : test.Texts()) {
    total += 1.0;
    confident += lr.Margin(text) > 0.5;
  }
  EXPECT_GT(confident / total, 0.5)
      << "trained LR should be confident on most separable examples";
}

}  // namespace
}  // namespace semtag::models
