#include <gtest/gtest.h>

#include "models/factory.h"

namespace semtag::models {
namespace {

// Transformer kinds are excluded here: creating them pulls (and possibly
// trains) the shared pretrained backbone, which the bench suite owns.
const ModelKind kCheapKinds[] = {ModelKind::kLr, ModelKind::kSvm,
                                 ModelKind::kCnn, ModelKind::kLstm,
                                 ModelKind::kNaiveBayes,
                                 ModelKind::kXgboost};

TEST(FactoryTest, NamesRoundTrip) {
  for (ModelKind kind :
       {ModelKind::kLr, ModelKind::kSvm, ModelKind::kCnn, ModelKind::kLstm,
        ModelKind::kBert, ModelKind::kNaiveBayes, ModelKind::kXgboost,
        ModelKind::kAlbert, ModelKind::kRoberta, ModelKind::kLrEmbedding,
        ModelKind::kSvmEmbedding}) {
    const auto parsed = ModelKindFromName(ModelKindName(kind));
    ASSERT_TRUE(parsed.ok()) << ModelKindName(kind);
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(ModelKindFromName("GPT").ok());
}

TEST(FactoryTest, IsDeepMatchesPaperClassification) {
  EXPECT_FALSE(IsDeep(ModelKind::kLr));
  EXPECT_FALSE(IsDeep(ModelKind::kSvm));
  EXPECT_FALSE(IsDeep(ModelKind::kNaiveBayes));
  EXPECT_FALSE(IsDeep(ModelKind::kXgboost));
  EXPECT_FALSE(IsDeep(ModelKind::kLrEmbedding));
  EXPECT_TRUE(IsDeep(ModelKind::kCnn));
  EXPECT_TRUE(IsDeep(ModelKind::kLstm));
  EXPECT_TRUE(IsDeep(ModelKind::kBert));
  EXPECT_TRUE(IsDeep(ModelKind::kAlbert));
  EXPECT_TRUE(IsDeep(ModelKind::kRoberta));
}

TEST(FactoryTest, CreatesCheapModels) {
  for (ModelKind kind : kCheapKinds) {
    auto model = CreateModel(kind);
    ASSERT_NE(model, nullptr) << ModelKindName(kind);
    EXPECT_EQ(model->name(), ModelKindName(kind));
    EXPECT_EQ(model->is_deep(), IsDeep(kind));
  }
}

TEST(FactoryTest, RepresentativeModelsAreThePaperFive) {
  const auto& models = RepresentativeModels();
  ASSERT_EQ(models.size(), 5u);
  EXPECT_EQ(models[0], ModelKind::kLr);
  EXPECT_EQ(models[1], ModelKind::kSvm);
  EXPECT_EQ(models[2], ModelKind::kCnn);
  EXPECT_EQ(models[3], ModelKind::kLstm);
  EXPECT_EQ(models[4], ModelKind::kBert);
}

TEST(FactoryTest, SeededCreationProducesDistinctInstances) {
  auto a = CreateModelSeeded(ModelKind::kLr, 1);
  auto b = CreateModelSeeded(ModelKind::kLr, 2);
  EXPECT_NE(a.get(), b.get());
}

}  // namespace
}  // namespace semtag::models
