#include <cmath>

#include <gtest/gtest.h>

#include "data/generator.h"
#include "data/specs.h"
#include "eval/metrics.h"
#include "models/simple/gbdt.h"
#include "models/simple/linear_svm.h"
#include "models/simple/logistic_regression.h"
#include "models/simple/naive_bayes.h"

namespace semtag::models {
namespace {

/// A strongly separable synthetic task all simple models must crack.
data::Dataset EasyDataset(int n, double ratio = 0.5, uint64_t seed = 55) {
  data::GeneratorConfig config;
  config.bg_vocab = 1800;
  config.signal_topic = 22;
  config.positive_topics = {23, 24};
  config.negative_topics = {25, 26};
  config.signal_strength = 0.35;
  config.signal_leak = 0.1;
  config.seed = seed;
  return data::GenerateDataset(data::SharedLanguage(), config, "easy", n,
                               ratio);
}

struct TrainedEval {
  double f1;
  double auc;
};

TrainedEval TrainEval(TaggingModel* model, int n = 800) {
  data::Dataset d = EasyDataset(n);
  auto [train, test] = d.Split(0.8);
  const Status st = model->Train(train);
  EXPECT_TRUE(st.ok()) << st.ToString();
  const auto scores = model->ScoreAll(test.Texts());
  const auto preds =
      eval::ThresholdScores(scores, model->DecisionThreshold());
  return {eval::F1Score(test.Labels(), preds),
          eval::Auc(test.Labels(), scores)};
}

TEST(LogisticRegressionTest, LearnsSeparableTask) {
  LogisticRegression model;
  const auto r = TrainEval(&model);
  EXPECT_GT(r.f1, 0.80);
  EXPECT_GT(r.auc, 0.90);
  EXPECT_GT(model.train_seconds(), 0.0);
  EXPECT_GT(model.num_features(), 100u);
}

TEST(LogisticRegressionTest, ScoresAreProbabilities) {
  LogisticRegression model;
  TrainEval(&model, 400);
  const data::Dataset probe = EasyDataset(50, 0.5, 77);
  for (const auto& e : probe.examples()) {
    const double s = model.Score(e.text);
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
  EXPECT_DOUBLE_EQ(model.DecisionThreshold(), 0.5);
}

TEST(LogisticRegressionTest, RejectsRetrainAndEmpty) {
  LogisticRegression model;
  EXPECT_EQ(model.Train(data::Dataset()).code(),
            StatusCode::kInvalidArgument);
  TrainEval(&model, 200);
  EXPECT_EQ(model.Train(EasyDataset(100)).code(),
            StatusCode::kFailedPrecondition);
}

TEST(LinearSvmTest, LearnsSeparableTask) {
  LinearSvm model;
  const auto r = TrainEval(&model);
  EXPECT_GT(r.f1, 0.80);
  EXPECT_GT(r.auc, 0.90);
}

TEST(LinearSvmTest, MarginThresholdIsZero) {
  LinearSvm model;
  EXPECT_DOUBLE_EQ(model.DecisionThreshold(), 0.0);
}

TEST(LinearSvmTest, DualVariablesRespectBox) {
  // Indirectly: training twice on contradictory labels still converges to
  // finite weights (alphas clipped to [0, C]).
  data::Dataset noisy("noisy");
  for (int i = 0; i < 100; ++i) {
    noisy.Add(data::Example{"same text every time", i % 2, i % 2});
  }
  LinearSvm model;
  ASSERT_TRUE(model.Train(noisy).ok());
  EXPECT_TRUE(std::isfinite(model.Score("same text every time")));
}

TEST(NaiveBayesTest, LearnsSeparableTask) {
  NaiveBayes model;
  const auto r = TrainEval(&model);
  EXPECT_GT(r.f1, 0.75);
  EXPECT_GT(r.auc, 0.85);
}

TEST(NaiveBayesTest, RequiresBothClasses) {
  data::Dataset onesided("one");
  for (int i = 0; i < 20; ++i) {
    onesided.Add(data::Example{"text " + std::to_string(i), 1, 1});
  }
  NaiveBayes model;
  EXPECT_EQ(model.Train(onesided).code(), StatusCode::kInvalidArgument);
}

TEST(GbdtTest, LearnsSeparableTask) {
  Gbdt model;
  const auto r = TrainEval(&model);
  EXPECT_GT(r.f1, 0.70);
  EXPECT_GT(r.auc, 0.85);
  EXPECT_GT(model.num_trees_built(), 5);
}

TEST(GbdtTest, CapsOversizedTrainingSets) {
  GbdtOptions options;
  options.max_train_examples = 100;
  options.num_trees = 5;
  Gbdt model(options);
  ASSERT_TRUE(model.Train(EasyDataset(400)).ok());
  // Capped run still produces a usable model.
  EXPECT_TRUE(std::isfinite(model.Score("anything")));
}

TEST(GbdtTest, RequiresBothClasses) {
  data::Dataset onesided("one");
  for (int i = 0; i < 20; ++i) {
    onesided.Add(data::Example{"text " + std::to_string(i), 0, 0});
  }
  Gbdt model;
  EXPECT_EQ(model.Train(onesided).code(), StatusCode::kInvalidArgument);
}

// Property sweep: simple models behave sensibly across label ratios.
class SimpleModelRatioTest : public ::testing::TestWithParam<double> {};

TEST_P(SimpleModelRatioTest, LrF1DegradesGracefullyWithImbalance) {
  const double ratio = GetParam();
  data::Dataset d = EasyDataset(1000, ratio, 60);
  auto [train, test] = d.Split(0.8);
  LogisticRegression model;
  ASSERT_TRUE(model.Train(train).ok());
  const auto preds = model.PredictAll(test.Texts());
  const double f1 = eval::F1Score(test.Labels(), preds);
  // Strongly separable: at 50% we expect near-perfect; even at 10% the
  // model must beat the all-positive baseline F1 = 2r/(1+r).
  const double baseline = 2 * ratio / (1 + ratio);
  EXPECT_GT(f1, baseline) << "ratio " << ratio;
}

INSTANTIATE_TEST_SUITE_P(Ratios, SimpleModelRatioTest,
                         ::testing::Values(0.1, 0.3, 0.5));

}  // namespace
}  // namespace semtag::models
