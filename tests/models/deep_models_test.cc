// Deep-model tests use deliberately tiny architectures and datasets so the
// suite stays fast on one CPU core; the shapes of the paper's experiments
// are exercised by the bench binaries instead.

#include <cmath>

#include <gtest/gtest.h>

#include "data/generator.h"
#include "data/specs.h"
#include "eval/metrics.h"
#include "models/deep/embedding_models.h"
#include "models/deep/mini_bert.h"
#include "models/deep/text_cnn.h"
#include "models/deep/text_lstm.h"

namespace semtag::models {
namespace {

data::Dataset EasyDataset(int n, uint64_t seed = 66) {
  data::GeneratorConfig config;
  config.bg_vocab = 1800;
  config.signal_topic = 22;
  config.positive_topics = {23, 24};
  config.negative_topics = {25, 26};
  config.signal_strength = 0.4;
  config.signal_leak = 0.1;
  config.avg_len = 12;
  config.seed = seed;
  return data::GenerateDataset(data::SharedLanguage(), config, "easy", n,
                               0.5);
}

double EvalF1(const TaggingModel& model, const data::Dataset& test) {
  const auto preds = model.PredictAll(test.Texts());
  return eval::F1Score(test.Labels(), preds);
}

TEST(TextCnnTest, LearnsSeparableTask) {
  CnnOptions options;
  options.max_len = 12;
  options.embed_dim = 16;
  options.filters_per_width = 8;
  options.epochs = 5;
  TextCnn model(options);
  data::Dataset d = EasyDataset(400);
  auto [train, test] = d.Split(0.8);
  ASSERT_TRUE(model.Train(train).ok());
  EXPECT_GT(EvalF1(model, test), 0.70);
  EXPECT_TRUE(model.is_deep());
}

TEST(TextCnnTest, CapsTrainingSet) {
  CnnOptions options;
  options.max_len = 12;
  options.embed_dim = 8;
  options.filters_per_width = 4;
  options.epochs = 1;
  options.max_train_examples = 50;
  TextCnn model(options);
  ASSERT_TRUE(model.Train(EasyDataset(200)).ok());
  EXPECT_GE(model.Score("anything at all"), 0.0);
}

TEST(TextLstmTest, LearnsSeparableTask) {
  LstmOptions options;
  options.max_len = 12;
  options.embed_dim = 16;
  options.hidden_dim = 16;
  options.epochs = 5;
  TextLstm model(options);
  data::Dataset d = EasyDataset(400);
  auto [train, test] = d.Split(0.8);
  ASSERT_TRUE(model.Train(train).ok());
  EXPECT_GT(EvalF1(model, test), 0.70);
}

class MiniBertFixture : public ::testing::Test {
 protected:
  static MiniBertBackbone* Backbone() {
    // One tiny backbone shared by the BERT tests, lightly pretrained so
    // embeddings carry topical structure.
    static MiniBertBackbone* backbone = [] {
      BertConfig config;
      config.max_len = 12;
      config.dim = 16;
      config.heads = 2;
      config.ffn = 32;
      config.layers = 2;
      config.seed = 3;
      const auto corpus = data::GeneratePretrainCorpus(
          data::SharedLanguage(), 300, 10, 71);
      text::VocabularyBuilder builder;
      for (const auto& s : corpus) {
        builder.AddDocument(text::Tokenize(s));
      }
      auto* b = new MiniBertBackbone(config, builder.Build(1, 4000));
      PretrainOptions pretrain;
      pretrain.epochs = 1;
      b->Pretrain(corpus, pretrain);
      return b;
    }();
    return backbone;
  }
};

TEST_F(MiniBertFixture, FineTunesOnSeparableTask) {
  BertFinetuneOptions options;
  options.epochs = 3;
  MiniBert model("BERT", *Backbone(), options);
  data::Dataset d = EasyDataset(300);
  auto [train, test] = d.Split(0.8);
  ASSERT_TRUE(model.Train(train).ok());
  EXPECT_GT(EvalF1(model, test), 0.65);
}

TEST_F(MiniBertFixture, CloneIsolatesFineTuning) {
  // Fine-tuning one MiniBert must not disturb a second one cloned from the
  // same backbone: identical models trained identically agree.
  BertFinetuneOptions options;
  options.epochs = 1;
  options.max_train_examples = 60;
  data::Dataset d = EasyDataset(80);

  MiniBert first("BERT", *Backbone(), options);
  ASSERT_TRUE(first.Train(d).ok());
  MiniBert second("BERT", *Backbone(), options);
  ASSERT_TRUE(second.Train(d).ok());
  for (int i = 0; i < 5; ++i) {
    const std::string text = d[static_cast<size_t>(i)].text;
    EXPECT_NEAR(first.Score(text), second.Score(text), 1e-6);
  }
}

TEST_F(MiniBertFixture, EmbedTextIsDeterministicAndSized) {
  MiniBert model("BERT", *Backbone(), {});
  const auto a = model.EmbedText("some words to embed");
  const auto b = model.EmbedText("some words to embed");
  ASSERT_EQ(a.size(), 16u);
  for (size_t i = 0; i < a.size(); ++i) EXPECT_FLOAT_EQ(a[i], b[i]);
}

TEST_F(MiniBertFixture, MlmPretrainingReducesLoss) {
  BertConfig config;
  config.max_len = 10;
  config.dim = 16;
  config.heads = 2;
  config.ffn = 32;
  config.layers = 1;
  const auto corpus =
      data::GeneratePretrainCorpus(data::SharedLanguage(), 400, 8, 81);
  text::VocabularyBuilder builder;
  for (const auto& s : corpus) builder.AddDocument(text::Tokenize(s));
  MiniBertBackbone backbone(config, builder.Build(1, 4000));
  PretrainOptions pretrain;
  pretrain.epochs = 4;
  pretrain.batch_size = 8;
  const PretrainStats stats = backbone.Pretrain(corpus, pretrain);
  EXPECT_LT(stats.last_epoch_loss, stats.first_epoch_loss - 0.1);
}

TEST_F(MiniBertFixture, EmbeddingLinearModelsTrain) {
  data::Dataset d = EasyDataset(200, 101);
  auto [train, test] = d.Split(0.8);
  EmbeddingLinearModel lr("LR+eb", Backbone());
  ASSERT_TRUE(lr.Train(train).ok());
  EXPECT_FALSE(lr.is_deep());
  EXPECT_DOUBLE_EQ(lr.DecisionThreshold(), 0.5);

  EmbeddingLinearOptions svm_options;
  svm_options.hinge = true;
  EmbeddingLinearModel svm("SVM+eb", Backbone(), svm_options);
  ASSERT_TRUE(svm.Train(train).ok());
  EXPECT_DOUBLE_EQ(svm.DecisionThreshold(), 0.0);
  // Both produce finite scores.
  EXPECT_TRUE(std::isfinite(lr.Score(test[0].text)));
  EXPECT_TRUE(std::isfinite(svm.Score(test[0].text)));
}

TEST(BertVariantTest, AlbertSharesParameters) {
  BertConfig shared;
  shared.max_len = 10;
  shared.dim = 16;
  shared.heads = 2;
  shared.ffn = 32;
  shared.layers = 2;
  shared.share_layers = true;
  BertConfig full = shared;
  full.share_layers = false;
  text::Vocabulary vocab;
  vocab.Add("word", 1);
  MiniBertBackbone albert(shared, vocab);
  text::Vocabulary vocab2;
  vocab2.Add("word", 1);
  MiniBertBackbone bert(full, vocab2);
  // ALBERT has one encoder layer's worth of parameters fewer.
  EXPECT_LT(albert.Parameters().size(), bert.Parameters().size());
}

}  // namespace
}  // namespace semtag::models
