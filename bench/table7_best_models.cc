// Reproduces Table 7: per category, the best DEEP model (BERT) vs the best
// SIMPLE model (best of LR/SVM) - average F1, the F1 gap, and average
// training times. This is the paper's central "it depends on your data"
// summary.

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "core/experiment.h"
#include "eval/metrics.h"

namespace semtag {
namespace {

struct PaperRow {
  double deep_f1;
  double simple_f1;
  double gap;
  double deep_time;
  double simple_time;
};
// Table 7 rows in the paper's order: Small-L, Small-H, Large-L, Large-H.
const PaperRow kPaper[] = {
    {0.68, 0.52, 0.16, 308, 1},
    {0.86, 0.78, 0.08, 324, 1},
    {0.24, 0.27, -0.03, 308680, 3128},
    {0.87, 0.85, 0.02, 14294, 318},
};
const core::DatasetCategory kOrder[] = {
    core::DatasetCategory::kSmallL, core::DatasetCategory::kSmallH,
    core::DatasetCategory::kLargeL, core::DatasetCategory::kLargeH};

int Main(int argc, char** argv) {
  bench::BenchSetup("Table 7 - best DEEP vs best SIMPLE by dataset type",
                    "Li et al., VLDB 2020, Section 6.1, Table 7", argc, argv);
  core::ExperimentRunner runner;

  bench::Table table({"Datasets", "DEEP F1", "SIMPLE F1", "gap (paper)",
                      "DEEP time", "SIMPLE time"});
  for (int c = 0; c < 4; ++c) {
    const auto specs = bench::SpecsInCategory(kOrder[c]);
    std::vector<double> deep_f1s, simple_f1s;
    double deep_time = 0.0, simple_time = 0.0;
    for (const auto& spec : specs) {
      const auto bert = runner.Run(spec, models::ModelKind::kBert);
      const auto lr = runner.Run(spec, models::ModelKind::kLr);
      const auto svm = runner.Run(spec, models::ModelKind::kSvm);
      deep_f1s.push_back(bert.f1);
      simple_f1s.push_back(std::max(lr.f1, svm.f1));
      deep_time += bert.train_seconds;
      simple_time +=
          lr.f1 >= svm.f1 ? lr.train_seconds : svm.train_seconds;
    }
    const double deep = eval::MacroAverage(deep_f1s);
    const double simple = eval::MacroAverage(simple_f1s);
    table.AddRow(
        {core::CategoryName(kOrder[c]),
         bench::VsPaper(deep, kPaper[c].deep_f1),
         bench::VsPaper(simple, kPaper[c].simple_f1),
         StrFormat("%+.2f (paper %+.2f)", deep - simple, kPaper[c].gap),
         HumanSeconds(deep_time / specs.size()),
         HumanSeconds(simple_time / specs.size())});
  }
  table.Print();

  std::printf(
      "Expected shape: DEEP wins clearly on Small-L/Small-H, roughly ties "
      "on Large-H, and loses (or ties) on Large-L while costing orders of "
      "magnitude more training time.\n");
  return 0;
}

}  // namespace
}  // namespace semtag

int main(int argc, char** argv) { return semtag::Main(argc, argv); }
