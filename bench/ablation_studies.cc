// Ablations of the design choices DESIGN.md calls out. These are not a
// paper table; they verify that each mechanism in this reproduction (and
// each hyper-parameter claim the paper makes in passing) actually carries
// the weight attributed to it.
//
//   (a) MLM pretraining: BERT fine-tuned from the pretrained checkpoint vs
//       from random initialization (the mechanism behind the small-data
//       edge; cf. Section 3.3 "BERT derives its performance from language
//       representation pre-trained on a large corpus").
//   (b) BoW features: unigram-only vs unigram+bigram vs no-IDF for SVM
//       (Section 3.2: "a combination of unigram and bigram yields the
//       best tagging quality").
//   (c) Threshold calibration on every imbalanced dataset (appendix).
//   (d) LSTM vs GRU cell (Section 3.3 cites GRU as the LSTM variant).
//   (e) Rule-programming baseline vs learned models (Section 1's
//       contrast).

#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "core/experiment.h"
#include "eval/metrics.h"
#include "models/deep/bert_cache.h"
#include "models/deep/mini_bert.h"
#include "models/deep/text_lstm.h"
#include "models/simple/linear_svm.h"
#include "models/simple/rule_tagger.h"

namespace semtag {
namespace {

struct SplitData {
  data::Dataset train;
  data::Dataset test;
};

SplitData SplitSpec(const data::DatasetSpec& spec) {
  data::Dataset dataset = data::BuildDataset(spec);
  Rng rng(spec.generator.seed ^ 0xab1a);
  dataset.Shuffle(&rng);
  auto [train, test] = dataset.Split(spec.train_fraction);
  return {std::move(train), std::move(test)};
}

double EvalModel(models::TaggingModel* model, const SplitData& data) {
  if (!model->Train(data.train).ok()) return 0.0;
  const auto preds = model->PredictAll(data.test.Texts());
  return eval::F1Score(data.test.Labels(), preds);
}

void PretrainingAblation() {
  std::printf("(a) MLM pretraining ablation (BERT fine-tuned from the "
              "pretrained checkpoint vs from random weights):\n\n");
  bench::Table table({"Dataset", "pretrained", "random init", "delta"});
  const auto& pretrained =
      models::GetPretrainedBackbone(models::BertVariant::kBert);
  // Random-init twin: same architecture and vocabulary, no pretraining.
  models::MiniBertBackbone random_init(pretrained.config(),
                                       pretrained.encoder()
                                           .word_vocabulary());
  for (const char* name : {"SUGG", "HOTEL", "QUOTE"}) {
    const SplitData data = SplitSpec(*data::FindSpec(name));
    models::MiniBert with("BERT", pretrained);
    models::MiniBert without("BERT-rand", random_init);
    const double f_with = EvalModel(&with, data);
    const double f_without = EvalModel(&without, data);
    table.AddRow({name, bench::Fmt(f_with), bench::Fmt(f_without),
                  StrFormat("%+.2f", f_with - f_without)});
  }
  table.Print();
}

void FeatureAblation() {
  std::printf("(b) SVM feature ablation (paper: unigram+bigram with IDF "
              "is best):\n\n");
  bench::Table table(
      {"Dataset", "uni+bi / IDF", "unigram only", "no IDF"});
  for (const char* name : {"SUGG", "EVAL", "AMAZON"}) {
    const SplitData data = SplitSpec(*data::FindSpec(name));
    models::SvmOptions base;
    models::SvmOptions unigram = base;
    unigram.bow.max_ngram = 1;
    models::SvmOptions no_idf = base;
    no_idf.bow.use_idf = false;
    models::LinearSvm svm_base(base);
    models::LinearSvm svm_uni(unigram);
    models::LinearSvm svm_noidf(no_idf);
    table.AddRow({name, bench::Fmt(EvalModel(&svm_base, data)),
                  bench::Fmt(EvalModel(&svm_uni, data)),
                  bench::Fmt(EvalModel(&svm_noidf, data))});
  }
  table.Print();
}

void CalibrationAblation(core::ExperimentRunner* runner) {
  std::printf("(c) calibration ablation on every imbalanced dataset "
              "(argmax F1 vs max-F1 threshold, SVM):\n\n");
  bench::Table table({"Dataset", "argmax", "calibrated", "delta"});
  for (const auto& spec : bench::LowRatioSpecs()) {
    const auto result = runner->Run(spec, models::ModelKind::kSvm);
    table.AddRow({spec.name, bench::Fmt(result.f1),
                  bench::Fmt(result.calibrated_f1),
                  StrFormat("%+.2f", result.calibrated_f1 - result.f1)});
  }
  table.Print();
}

void CellAblation() {
  std::printf("(d) recurrent-cell ablation (LSTM vs GRU):\n\n");
  bench::Table table({"Dataset", "LSTM", "GRU"});
  for (const char* name : {"SUGG", "TV", "EVAL"}) {
    const SplitData data = SplitSpec(*data::FindSpec(name));
    models::LstmOptions lstm_options;
    models::LstmOptions gru_options;
    gru_options.cell = models::RnnCell::kGru;
    models::TextLstm lstm(lstm_options);
    models::TextLstm gru(gru_options);
    table.AddRow({name, bench::Fmt(EvalModel(&lstm, data)),
                  bench::Fmt(EvalModel(&gru, data))});
  }
  table.Print();
}

void RuleBaseline(core::ExperimentRunner* runner) {
  std::printf("(e) rule-programming baseline (induced keyword rules) vs "
              "learned models (Section 1's motivation for supervised "
              "learning):\n\n");
  bench::Table table({"Dataset", "RULES", "SVM", "BERT"});
  for (const char* name : {"SUGG", "HOTEL", "EVAL"}) {
    const auto spec = *data::FindSpec(name);
    const SplitData data = SplitSpec(spec);
    models::RuleTagger rules;
    table.AddRow({name, bench::Fmt(EvalModel(&rules, data)),
                  bench::Fmt(runner->Run(spec, models::ModelKind::kSvm).f1),
                  bench::Fmt(
                      runner->Run(spec, models::ModelKind::kBert).f1)});
  }
  table.Print();
}

int Main(int argc, char** argv) {
  bench::BenchSetup("Ablations of this reproduction's design choices",
                    "DESIGN.md ablation index (not a paper table)", argc, argv);
  core::ExperimentRunner runner;
  PretrainingAblation();
  FeatureAblation();
  CalibrationAblation(&runner);
  CellAblation();
  RuleBaseline(&runner);
  return 0;
}

}  // namespace
}  // namespace semtag

int main(int argc, char** argv) { return semtag::Main(argc, argv); }
