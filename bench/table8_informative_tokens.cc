// Reproduces Table 8: the top-5 informative tokens (largest P-N, the
// class-conditional occurrence gap) on AMAZON, YELP, FUNNY*, BOOK*. The
// paper's observation: clean sentiment datasets surface sentiment words
// ("great", "love"), while the dirty datasets surface stopwords - evidence
// that their separable signal is weak.

#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "core/characteristics.h"
#include "data/specs.h"

namespace semtag {
namespace {

int Main(int argc, char** argv) {
  bench::BenchSetup("Table 8 - informative tokens by P-N",
                    "Li et al., VLDB 2020, Section 6.2.3, Table 8", argc, argv);
  for (const char* name : {"AMAZON", "YELP", "FUNNY*", "BOOK*"}) {
    const auto spec = *data::FindSpec(name);
    const data::Dataset dataset = data::BuildDataset(spec);
    const auto tokens = core::TopInformativeTokens(dataset, 5, 20);
    std::printf("%s (paper's top token: %s)\n\n", name,
                std::string(name) == "AMAZON"  ? "great 0.27/0.09"
                : std::string(name) == "YELP"  ? "great 0.39/0.15"
                : std::string(name) == "FUNNY*" ? "that 0.75/0.41 (stopword)"
                                                : "he 0.13/0.06 (stopword)");
    bench::Table table({"token", "P", "N", "P-N"});
    for (const auto& t : tokens) {
      table.AddRow({t.token, bench::Fmt(t.p), bench::Fmt(t.n),
                    StrFormat("%+.2f", t.p - t.n)});
    }
    table.Print();
  }
  std::printf(
      "Expected shape: AMAZON/YELP top tokens are sentiment words with a "
      "wide P-N gap; FUNNY*/BOOK* top tokens have narrow gaps and include "
      "high-frequency words, reflecting their dirty, diffuse signal.\n");
  return 0;
}

}  // namespace
}  // namespace semtag

int main(int argc, char** argv) { return semtag::Main(argc, argv); }
