// Cascade inference frontier (DESIGN.md "Cascade inference"): trains the
// confidence-gated cascade and an always-deep baseline on large synthetic
// cells, then measures ScoreAll wall time, test F1, and the escalation
// fraction side by side. Emits BENCH_cascade.json with the full
// cost/accuracy frontier swept during calibration.
//
//   cascade_frontier [--smoke] [--out <path>] [--budget <F1 pts>]
//                    [--metrics[=path]] [--trace[=path]]
//
// --smoke runs the single large-clean cell (AMAZON) with a 2x speedup gate
// (the CI configuration); the full run covers three cells and gates on the
// acceptance bar: >= 3x ScoreAll speedup at <= 0.5 F1 pt cost on at least
// two cells. Exit status 1 when the gate fails, so CI catches regressions.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/file_io.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "core/cascade.h"
#include "data/specs.h"
#include "eval/metrics.h"
#include "models/factory.h"
#include "obs/metrics.h"

namespace semtag {
namespace {

struct CellResult {
  std::string dataset;
  std::string pair;
  bool simple_only = false;
  double threshold = -1.0;
  double holdout_escalation = 0.0;
  double f1_cascade = 0.0;
  double f1_deep = 0.0;
  double escalation_fraction = 0.0;  // on the test split
  double wall_s_deep = 0.0;
  double wall_s_cascade = 0.0;
  double simple_us_per_text = 0.0;
  double deep_us_per_text = 0.0;
  std::vector<core::FrontierPoint> frontier;

  double speedup() const {
    return wall_s_cascade > 0.0 ? wall_s_deep / wall_s_cascade : 0.0;
  }
  /// F1 points given up versus always-deep (negative = cascade wins).
  double f1_delta_pts() const { return (f1_deep - f1_cascade) * 100.0; }
};

double MedianOfReps(int reps, const std::function<void()>& fn) {
  std::vector<double> walls;
  for (int r = 0; r < reps; ++r) {
    WallTimer timer;
    fn();
    walls.push_back(timer.ElapsedSeconds());
  }
  std::sort(walls.begin(), walls.end());
  return walls[walls.size() / 2];
}

CellResult RunCell(const data::DatasetSpec& spec, double budget_pts,
                   int reps) {
  CellResult cell;
  cell.dataset = spec.name;

  data::Dataset dataset = data::BuildDataset(spec);
  Rng shuffle_rng(spec.generator.seed);
  dataset.Shuffle(&shuffle_rng);
  auto [train, test] = dataset.Split(spec.train_fraction);
  train.set_name(spec.name);

  core::CascadeOptions options = core::CascadeOptionsFromEnv();
  options.budget_pts = budget_pts;
  core::Cascade cascade(options);
  Status st = cascade.Train(train);
  SEMTAG_CHECK(st.ok());
  const core::CascadePlan& plan = cascade.plan();
  cell.pair = std::string(models::ModelKindName(plan.simple)) +
              (plan.simple_only
                   ? ""
                   : std::string("->") + models::ModelKindName(plan.deep));
  cell.simple_only = plan.simple_only;
  cell.threshold = cascade.threshold();
  cell.holdout_escalation = cascade.calibration().escalation_fraction;
  cell.frontier = cascade.calibration().frontier;

  // Always-deep baseline: the same deep family trained on the full train
  // split (the pipeline the cascade's accuracy budget is pinned against).
  auto deep = models::CreateModelSeeded(plan.deep, 0);
  SEMTAG_CHECK(deep != nullptr);
  st = deep->Train(train);
  SEMTAG_CHECK(st.ok());

  const auto texts = test.Texts();
  const auto labels = test.Labels();

  const auto f1_of = [&](const std::vector<double>& scores,
                         double boundary) {
    return eval::ComputeConfusion(labels,
                                  eval::ThresholdScores(scores, boundary))
        .F1();
  };
  cell.f1_cascade = f1_of(cascade.ScoreAll(texts),
                          cascade.DecisionThreshold());
  cell.f1_deep = f1_of(deep->ScoreAll(texts), deep->DecisionThreshold());
  const auto mask = cascade.EscalationMask(texts);
  size_t escalated = 0;
  for (uint8_t m : mask) escalated += m;
  cell.escalation_fraction =
      texts.empty() ? 0.0 : static_cast<double>(escalated) / texts.size();

  // Per-tier mean latency comes from the obs histograms the cascade
  // populates; deltas across the timed region attribute them to this cell.
  auto& simple_hist = obs::GetHistogram("cascade/simple_pass_us",
                                        obs::LatencyBucketsUs());
  auto& deep_hist =
      obs::GetHistogram("cascade/deep_pass_us", obs::LatencyBucketsUs());
  const double simple_sum0 = simple_hist.Sum();
  const uint64_t simple_n0 = simple_hist.TotalCount();
  const double deep_sum0 = deep_hist.Sum();
  const uint64_t deep_n0 = deep_hist.TotalCount();

  cell.wall_s_deep =
      MedianOfReps(reps, [&] { (void)deep->ScoreAll(texts); });
  cell.wall_s_cascade =
      MedianOfReps(reps, [&] { (void)cascade.ScoreAll(texts); });

  const uint64_t simple_n = simple_hist.TotalCount() - simple_n0;
  const uint64_t deep_n = deep_hist.TotalCount() - deep_n0;
  if (simple_n > 0 && !texts.empty()) {
    cell.simple_us_per_text = (simple_hist.Sum() - simple_sum0) /
                              (static_cast<double>(simple_n) * texts.size());
  }
  if (deep_n > 0 && escalated > 0) {
    cell.deep_us_per_text = (deep_hist.Sum() - deep_sum0) /
                            (static_cast<double>(deep_n) * escalated);
  }
  return cell;
}

std::string CellJson(const CellResult& c) {
  std::string json = StrFormat(
      "    {\"dataset\": \"%s\", \"pair\": \"%s\", \"simple_only\": %s,\n"
      "     \"threshold\": %.17g, \"holdout_escalation\": %.4f,\n"
      "     \"f1_cascade\": %.4f, \"f1_deep\": %.4f, "
      "\"f1_delta_pts\": %.2f,\n"
      "     \"escalation_fraction\": %.4f, \"wall_s_deep\": %.4f, "
      "\"wall_s_cascade\": %.4f, \"speedup\": %.2f,\n"
      "     \"simple_us_per_text\": %.2f, \"deep_us_per_text\": %.2f,\n"
      "     \"frontier\": [",
      c.dataset.c_str(), c.pair.c_str(), c.simple_only ? "true" : "false",
      c.threshold, c.holdout_escalation, c.f1_cascade, c.f1_deep,
      c.f1_delta_pts(), c.escalation_fraction, c.wall_s_deep,
      c.wall_s_cascade, c.speedup(), c.simple_us_per_text,
      c.deep_us_per_text);
  for (size_t i = 0; i < c.frontier.size(); ++i) {
    json += StrFormat("%s{\"threshold\": %.17g, \"escalation\": %.4f, "
                      "\"f1\": %.4f}",
                      i == 0 ? "" : ", ", c.frontier[i].threshold,
                      c.frontier[i].escalation_fraction, c.frontier[i].f1);
  }
  json += "]}";
  return json;
}

int Main(int argc, char** argv) {
  bool smoke = false;
  std::string out = "BENCH_cascade.json";
  double budget_pts = 0.5;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[i + 1];
    }
    if (std::strcmp(argv[i], "--budget") == 0 && i + 1 < argc) {
      double pts = 0.0;
      if (ParseDouble(argv[i + 1], &pts)) budget_pts = pts;
    }
  }
  bench::BenchSetup(
      "Cascade inference frontier",
      "DESIGN.md 'Cascade inference' (Section 6.3 decision procedure "
      "turned into a serving-path optimisation)",
      argc, argv);
  // The per-tier latency attribution needs the histograms recording even
  // without an explicit --metrics flag.
  obs::SetMetricsEnabled(true);
  core::EnsureCascadeRegistered();

  const std::vector<std::string> names =
      smoke ? std::vector<std::string>{"AMAZON"}
            : std::vector<std::string>{"AMAZON", "YELP", "FUNNY*"};
  const double required_speedup = smoke ? 2.0 : 3.0;
  const int required_cells = smoke ? 1 : 2;
  const int reps = smoke ? 2 : 3;

  std::vector<CellResult> cells;
  for (const auto& name : names) {
    auto spec = data::FindSpec(name);
    SEMTAG_CHECK(spec.ok());
    cells.push_back(RunCell(*spec, budget_pts, reps));
  }

  bench::Table table({"dataset", "pair", "threshold", "escalated",
                      "F1 cascade", "F1 deep", "delta pts", "speedup"});
  int meeting = 0;
  for (const auto& c : cells) {
    const bool meets =
        c.speedup() >= required_speedup && c.f1_delta_pts() <= budget_pts;
    meeting += meets;
    table.AddRow({c.dataset, c.pair,
                  c.threshold < 0 ? "never" : bench::Fmt(c.threshold, 4),
                  bench::Fmt(100 * c.escalation_fraction, 1) + "%",
                  bench::Fmt(c.f1_cascade, 3), bench::Fmt(c.f1_deep, 3),
                  bench::Fmt(c.f1_delta_pts(), 2),
                  bench::Fmt(c.speedup(), 2) + "x"});
  }
  table.Print();
  const bool pass = meeting >= required_cells;
  std::printf("gate: >= %.1fx at <= %.2f F1 pts on >= %d cell(s): %s "
              "(%d met)\n",
              required_speedup, budget_pts, required_cells,
              pass ? "PASS" : "FAIL", meeting);

  std::string json = "{\n  \"bench\": \"cascade_frontier\",\n";
  json += bench::JsonContextFields() + "\n";
  json += StrFormat("  \"smoke\": %s,\n  \"budget_pts\": %.2f,\n"
                    "  \"cells\": [\n",
                    smoke ? "true" : "false", budget_pts);
  for (size_t i = 0; i < cells.size(); ++i) {
    json += CellJson(cells[i]) + (i + 1 < cells.size() ? ",\n" : "\n");
  }
  json += StrFormat("  ],\n  \"gate\": {\"required_speedup\": %.1f, "
                    "\"required_cells\": %d, \"cells_meeting\": %d, "
                    "\"pass\": %s}\n}\n",
                    required_speedup, required_cells, meeting,
                    pass ? "true" : "false");
  const Status st = WriteFileAtomic(out, json);
  if (!st.ok()) {
    std::fprintf(stderr, "cannot write %s: %s\n", out.c_str(),
                 st.ToString().c_str());
    return 1;
  }
  std::printf("-> %s\n", out.c_str());
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace semtag

int main(int argc, char** argv) { return semtag::Main(argc, argv); }
