// Reproduces Figure 6: BERT vs LR vs SVM on HOTEL (representative small
// dataset) and FUNNY (representative large dataset). The paper: BERT wins
// by +0.14/+0.12 F1 on HOTEL but loses to SVM by 0.06 on FUNNY while
// taking 1.4 days to train.

#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "core/experiment.h"

namespace semtag {
namespace {

int Main(int argc, char** argv) {
  bench::BenchSetup("Figure 6 - representative small vs large dataset",
                    "Li et al., VLDB 2020, Section 5.3, Figure 6", argc, argv);
  core::ExperimentRunner runner;

  const struct {
    const char* dataset;
    double paper_lr;
    double paper_svm;
    double paper_bert;
  } rows[] = {
      {"HOTEL", 0.53, 0.55, 0.67},
      {"FUNNY", 0.36, 0.38, 0.32},
  };

  bench::Table table({"Dataset", "LR (paper)", "SVM (paper)",
                      "BERT (paper)", "BERT time"});
  for (const auto& row : rows) {
    const auto spec = *data::FindSpec(row.dataset);
    const auto lr = runner.Run(spec, models::ModelKind::kLr);
    const auto svm = runner.Run(spec, models::ModelKind::kSvm);
    const auto bert = runner.Run(spec, models::ModelKind::kBert);
    table.AddRow({row.dataset, bench::VsPaper(lr.f1, row.paper_lr),
                  bench::VsPaper(svm.f1, row.paper_svm),
                  bench::VsPaper(bert.f1, row.paper_bert),
                  HumanSeconds(bert.train_seconds)});
  }
  table.Print();
  std::printf("Expected shape: BERT clearly ahead on HOTEL (small, clean); "
              "on FUNNY (large, dirty, imbalanced) the simple models match "
              "or beat it.\n");
  return 0;
}

}  // namespace
}  // namespace semtag

int main(int argc, char** argv) { return semtag::Main(argc, argv); }
