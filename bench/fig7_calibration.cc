// Reproduces Figure 7 and appendix Figure 12: calibration-threshold max-F1
// of LR, SVM and BERT on the two large imbalanced datasets (FUNNY, BOOK),
// sweeping 100-400 thresholds, plus the undersample-to-50% variant.

#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "core/experiment.h"
#include "data/sampling.h"
#include "eval/calibration.h"
#include "eval/metrics.h"
#include "models/factory.h"

namespace semtag {
namespace {

/// Trains once and reports max-F1 at several threshold resolutions.
void CalibrationSweep(const data::DatasetSpec& spec) {
  std::printf("Figure 7 (%s): max F1 by number of calibration thresholds\n\n",
              spec.name.c_str());
  data::Dataset dataset = data::BuildDataset(spec);
  Rng rng(spec.generator.seed ^ 0xf17);
  dataset.Shuffle(&rng);
  auto [train, test] = dataset.Split(spec.train_fraction);
  const auto labels = test.Labels();

  bench::Table table(
      {"Model", "argmax F1", "T=100", "T=200", "T=300", "T=400"});
  for (auto kind : {models::ModelKind::kLr, models::ModelKind::kSvm,
                    models::ModelKind::kBert}) {
    auto model = models::CreateModel(kind);
    if (!model->Train(train).ok()) continue;
    const auto scores = model->ScoreAll(test.Texts());
    std::vector<std::string> row = {model->name()};
    row.push_back(bench::Fmt(eval::F1Score(
        labels,
        eval::ThresholdScores(scores, model->DecisionThreshold()))));
    for (int thresholds : {100, 200, 300, 400}) {
      row.push_back(bench::Fmt(
          eval::CalibrateMaxF1(labels, scores, thresholds).best_f1));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
}

/// Appendix Figure 12: undersample the train set to 50% positives (test
/// ratio unchanged), with and without calibration.
void SubsamplingExperiment(const data::DatasetSpec& spec) {
  std::printf("Figure 12 (%s): undersampled-to-50%% training set\n\n",
              spec.name.c_str());
  data::Dataset dataset = data::BuildDataset(spec);
  Rng rng(spec.generator.seed ^ 0xf12);
  dataset.Shuffle(&rng);
  auto [train, test] = dataset.Split(spec.train_fraction);
  const data::Dataset balanced_train =
      data::UndersampleNegatives(train, 0.5, &rng);
  const auto labels = test.Labels();

  bench::Table table({"Model", "original F1", "subsampled F1",
                      "subsampled+calibrated F1"});
  for (auto kind : {models::ModelKind::kLr, models::ModelKind::kSvm,
                    models::ModelKind::kBert}) {
    auto original = models::CreateModel(kind);
    auto subsampled = models::CreateModel(kind);
    if (!original->Train(train).ok()) continue;
    if (!subsampled->Train(balanced_train).ok()) continue;
    const auto orig_scores = original->ScoreAll(test.Texts());
    const auto sub_scores = subsampled->ScoreAll(test.Texts());
    table.AddRow(
        {original->name(),
         bench::Fmt(eval::F1Score(
             labels, eval::ThresholdScores(
                         orig_scores, original->DecisionThreshold()))),
         bench::Fmt(eval::F1Score(
             labels, eval::ThresholdScores(
                         sub_scores, subsampled->DecisionThreshold()))),
         bench::Fmt(eval::CalibrateMaxF1(labels, sub_scores).best_f1)});
  }
  table.Print();
  std::printf("(train ratio %.2f -> %.2f after undersampling; %zu -> %zu "
              "records)\n\n",
              train.PositiveRatio(), balanced_train.PositiveRatio(),
              train.size(), balanced_train.size());
}

int Main(int argc, char** argv) {
  bench::BenchSetup(
      "Figure 7 / Figure 12 - calibration and subsampling on FUNNY/BOOK",
      "Li et al., VLDB 2020, Section 6.1 + appendix", argc, argv);
  for (const char* name : {"FUNNY", "BOOK"}) {
    const auto spec = *data::FindSpec(name);
    CalibrationSweep(spec);
    SubsamplingExperiment(spec);
  }
  std::printf(
      "Expected shape: calibration lifts every model's F1 substantially, "
      "but simple models stay comparable to or better than BERT on these "
      "dirty imbalanced datasets.\n");
  return 0;
}

}  // namespace
}  // namespace semtag

int main(int argc, char** argv) { return semtag::Main(argc, argv); }
