// Reproduces Figure 4: (a) macro-average F1 of each model over all 21
// datasets and (b) average training time. The paper's headline: BERT wins
// on F1 but deep models cost 30x-130x more training time than simple ones.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "core/experiment.h"
#include "eval/metrics.h"

namespace semtag {
namespace {

int Main(int argc, char** argv) {
  bench::BenchSetup("Figure 4 - average F1 and training time trade-off",
                    "Li et al., VLDB 2020, Section 5.2.3, Figure 4", argc, argv);
  core::ExperimentRunner runner;

  const double paper_f1[5] = {0.59, 0.60, 0.53, 0.55, 0.70};
  bench::Table table({"Model", "avg F1 (paper approx)", "avg train time",
                      "log10(seconds)"});
  double simple_time = 0.0;
  int simple_count = 0;
  double deep_time = 0.0;
  int deep_count = 0;
  int m = 0;
  for (auto kind : models::RepresentativeModels()) {
    std::vector<double> f1s;
    double total_time = 0.0;
    for (const auto& spec : data::AllDatasetSpecs()) {
      const auto result = runner.Run(spec, kind);
      f1s.push_back(result.f1);
      total_time += result.train_seconds;
    }
    const double avg_time = total_time / 21.0;
    if (models::IsDeep(kind)) {
      deep_time += avg_time;
      ++deep_count;
    } else {
      simple_time += avg_time;
      ++simple_count;
    }
    table.AddRow({models::ModelKindName(kind),
                  bench::VsPaper(eval::MacroAverage(f1s), paper_f1[m]),
                  HumanSeconds(avg_time),
                  bench::Fmt(std::log10(std::max(avg_time, 1e-4)))});
    ++m;
  }
  table.Print();

  const double ratio =
      (deep_time / deep_count) / std::max(simple_time / simple_count, 1e-9);
  std::printf("Deep/simple average-training-time ratio: %.0fx "
              "(paper: 30x-130x on GPU vs CPU; the asymmetry is "
              "hardware-independent)\n",
              ratio);
  return 0;
}

}  // namespace
}  // namespace semtag

int main(int argc, char** argv) { return semtag::Main(argc, argv); }
