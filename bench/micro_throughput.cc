// google-benchmark microbenchmarks of the pipeline's building blocks:
// tokenization, BoW featurization, simple-model epochs, and deep-model
// training steps. These quantify the per-record cost asymmetry behind
// Figure 4(b)'s 30x-130x deep/simple training-time gap.

#include <benchmark/benchmark.h>

#include "common/logging.h"
#include "data/generator.h"
#include "data/specs.h"
#include "models/deep/mini_bert.h"
#include "models/deep/text_cnn.h"
#include "models/deep/text_lstm.h"
#include "models/simple/linear_svm.h"
#include "models/simple/logistic_regression.h"
#include "la/buffer_pool.h"
#include "la/init.h"
#include "nn/layers.h"
#include "nn/ops.h"
#include "nn/optimizer.h"
#include "text/bow_vectorizer.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace semtag {
namespace {

data::Dataset BenchDataset(int n) {
  data::GeneratorConfig config;
  config.bg_vocab = 2000;
  config.signal_topic = 16;
  config.positive_topics = {17, 18};
  config.negative_topics = {19, 20};
  config.seed = 99;
  return data::GenerateDataset(data::SharedLanguage(), config, "bench", n,
                               0.5);
}

void BM_Tokenize(benchmark::State& state) {
  const data::Dataset d = BenchDataset(256);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::Tokenize(d[i % d.size()].text));
    ++i;
  }
}
BENCHMARK(BM_Tokenize);

void BM_BowTransform(benchmark::State& state) {
  const data::Dataset d = BenchDataset(1024);
  text::BowVectorizer vectorizer;
  vectorizer.Fit(d.Texts());
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(vectorizer.Transform(d[i % d.size()].text));
    ++i;
  }
}
BENCHMARK(BM_BowTransform);

void BM_BowFit(benchmark::State& state) {
  const data::Dataset d = BenchDataset(static_cast<int>(state.range(0)));
  const auto texts = d.Texts();
  for (auto _ : state) {
    text::BowVectorizer vectorizer;
    vectorizer.Fit(texts);
    benchmark::DoNotOptimize(vectorizer.num_features());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BowFit)->Arg(256)->Arg(1024)->Iterations(5);

void BM_TrainLogisticRegression(benchmark::State& state) {
  const data::Dataset d = BenchDataset(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    models::LogisticRegression model;
    SEMTAG_CHECK(model.Train(d).ok());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TrainLogisticRegression)->Arg(512)->Arg(2048)->Iterations(3);

void BM_TrainLinearSvm(benchmark::State& state) {
  const data::Dataset d = BenchDataset(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    models::LinearSvm model;
    SEMTAG_CHECK(model.Train(d).ok());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TrainLinearSvm)->Arg(512)->Arg(2048)->Iterations(3);

void BM_TrainTextCnnEpoch(benchmark::State& state) {
  const data::Dataset d = BenchDataset(256);
  for (auto _ : state) {
    models::CnnOptions options;
    options.epochs = 1;
    options.min_optimizer_steps = 8;  // exactly one pass over 256 records
    models::TextCnn model(options);
    SEMTAG_CHECK(model.Train(d).ok());
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_TrainTextCnnEpoch)->Iterations(1);

void BM_TrainTextLstmEpoch(benchmark::State& state) {
  const data::Dataset d = BenchDataset(256);
  for (auto _ : state) {
    models::LstmOptions options;
    options.epochs = 1;
    options.min_optimizer_steps = 8;  // exactly one pass over 256 records
    models::TextLstm model(options);
    SEMTAG_CHECK(model.Train(d).ok());
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_TrainTextLstmEpoch)->Iterations(1);

/// Attaches BufferPool allocations/step counters to a training-step
/// benchmark. In steady state (pool warm) allocs_per_step must be 0.
void SetPoolCounters(benchmark::State& state,
                     const la::BufferPool::Stats& before, uint64_t steps) {
  const auto after = la::BufferPool::GetStats();
  const double inv = steps > 0 ? 1.0 / static_cast<double>(steps) : 0.0;
  state.counters["allocs_per_step"] =
      static_cast<double>(after.system_allocs - before.system_allocs) * inv;
  state.counters["pool_hits_per_step"] =
      static_cast<double>(after.pool_hits - before.pool_hits) * inv;
}

void BM_TransformerLayerForwardBackward(benchmark::State& state) {
  Rng rng(7);
  nn::TransformerEncoderLayer layer(32, 4, 128, &rng);
  la::Matrix x(20, 32);
  la::GaussianInit(&x, &rng, 1.0f);
  la::Matrix mask(20, 20);
  std::vector<nn::Variable> params;
  layer.CollectParameters(&params);
  nn::Adam adam(params, 1e-3f);
  auto step = [&] {
    nn::Variable input(x, /*requires_grad=*/true);
    nn::Variable out = layer.Forward(input, mask, 0.0, &rng, true);
    nn::Backward(nn::SumToScalar(out));
    adam.Step();
  };
  for (int i = 0; i < 3; ++i) step();  // warm the buffer pool
  const auto before = la::BufferPool::GetStats();
  uint64_t steps = 0;
  for (auto _ : state) {
    step();
    ++steps;
  }
  SetPoolCounters(state, before, steps);
}
BENCHMARK(BM_TransformerLayerForwardBackward);

void BM_MiniBertTrainStep(benchmark::State& state) {
  // A full mini_bert fine-tuning step: encode -> mean-pool -> linear head
  // -> softmax cross-entropy -> backward -> Adam. The end-to-end number
  // behind the kernel-layer speedup claim.
  models::BertConfig config;
  config.layers = 2;
  text::VocabularyBuilder builder;
  const data::Dataset d = BenchDataset(64);
  for (const auto& text : d.Texts()) {
    builder.AddDocument(text::Tokenize(text));
  }
  models::MiniBertBackbone bert(config, builder.Build(1, 4000));

  Rng rng(7);
  nn::Variable head(la::Matrix(config.dim, 2), /*requires_grad=*/true);
  la::GaussianInit(&head.mutable_value(), &rng, 0.05f);
  std::vector<nn::Variable> params = bert.Parameters();
  params.push_back(head);
  nn::Adam adam(params, 1e-4f);

  const std::vector<int32_t> ids = bert.EncodeIds(d[0].text);
  const std::vector<int32_t> labels = {1};
  auto step = [&] {
    nn::Variable hidden = bert.Encode(ids, &rng, /*training=*/true);
    nn::Variable pooled = nn::MeanRows(hidden);
    nn::Variable logits = nn::MatMul(pooled, head);
    nn::Backward(nn::SoftmaxCrossEntropy(logits, labels));
    adam.Step();
  };
  for (int i = 0; i < 3; ++i) step();  // warm the buffer pool
  const auto before = la::BufferPool::GetStats();
  uint64_t steps = 0;
  for (auto _ : state) {
    step();
    ++steps;
  }
  SetPoolCounters(state, before, steps);
}
BENCHMARK(BM_MiniBertTrainStep);

}  // namespace
}  // namespace semtag

int main(int argc, char** argv) {
  semtag::SetLogLevel(semtag::LogLevel::kWarning);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
