// google-benchmark microbenchmarks of the pipeline's building blocks:
// tokenization, BoW featurization, simple-model epochs, and deep-model
// training steps. These quantify the per-record cost asymmetry behind
// Figure 4(b)'s 30x-130x deep/simple training-time gap.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "data/generator.h"
#include "data/specs.h"
#include "models/deep/mini_bert.h"
#include "models/deep/text_cnn.h"
#include "models/deep/text_lstm.h"
#include "models/simple/linear_svm.h"
#include "models/simple/logistic_regression.h"
#include "la/buffer_pool.h"
#include "la/init.h"
#include "nn/layers.h"
#include "nn/ops.h"
#include "nn/optimizer.h"
#include "obs/metrics.h"
#include "text/bow_vectorizer.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace semtag {
namespace {

data::Dataset BenchDataset(int n) {
  data::GeneratorConfig config;
  config.bg_vocab = 2000;
  config.signal_topic = 16;
  config.positive_topics = {17, 18};
  config.negative_topics = {19, 20};
  config.seed = 99;
  return data::GenerateDataset(data::SharedLanguage(), config, "bench", n,
                               0.5);
}

void BM_Tokenize(benchmark::State& state) {
  const data::Dataset d = BenchDataset(256);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::Tokenize(d[i % d.size()].text));
    ++i;
  }
}
BENCHMARK(BM_Tokenize);

void BM_BowTransform(benchmark::State& state) {
  const data::Dataset d = BenchDataset(1024);
  text::BowVectorizer vectorizer;
  vectorizer.Fit(d.Texts());
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(vectorizer.Transform(d[i % d.size()].text));
    ++i;
  }
}
BENCHMARK(BM_BowTransform);

void BM_BowFit(benchmark::State& state) {
  const data::Dataset d = BenchDataset(static_cast<int>(state.range(0)));
  const auto texts = d.Texts();
  for (auto _ : state) {
    text::BowVectorizer vectorizer;
    vectorizer.Fit(texts);
    benchmark::DoNotOptimize(vectorizer.num_features());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BowFit)->Arg(256)->Arg(1024)->Iterations(5);

void BM_TrainLogisticRegression(benchmark::State& state) {
  const data::Dataset d = BenchDataset(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    models::LogisticRegression model;
    SEMTAG_CHECK(model.Train(d).ok());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TrainLogisticRegression)->Arg(512)->Arg(2048)->Iterations(3);

void BM_TrainLinearSvm(benchmark::State& state) {
  const data::Dataset d = BenchDataset(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    models::LinearSvm model;
    SEMTAG_CHECK(model.Train(d).ok());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TrainLinearSvm)->Arg(512)->Arg(2048)->Iterations(3);

void BM_TrainTextCnnEpoch(benchmark::State& state) {
  const data::Dataset d = BenchDataset(256);
  for (auto _ : state) {
    models::CnnOptions options;
    options.epochs = 1;
    options.min_optimizer_steps = 8;  // exactly one pass over 256 records
    models::TextCnn model(options);
    SEMTAG_CHECK(model.Train(d).ok());
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_TrainTextCnnEpoch)->Iterations(1);

void BM_TrainTextLstmEpoch(benchmark::State& state) {
  const data::Dataset d = BenchDataset(256);
  for (auto _ : state) {
    models::LstmOptions options;
    options.epochs = 1;
    options.min_optimizer_steps = 8;  // exactly one pass over 256 records
    models::TextLstm model(options);
    SEMTAG_CHECK(model.Train(d).ok());
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_TrainTextLstmEpoch)->Iterations(1);

/// Attaches BufferPool allocations/step counters to a training-step
/// benchmark. In steady state (pool warm) allocs_per_step must be 0.
void SetPoolCounters(benchmark::State& state,
                     const la::BufferPool::Stats& before, uint64_t steps) {
  const auto after = la::BufferPool::GetStats();
  const double inv = steps > 0 ? 1.0 / static_cast<double>(steps) : 0.0;
  state.counters["allocs_per_step"] =
      static_cast<double>(after.system_allocs - before.system_allocs) * inv;
  state.counters["pool_hits_per_step"] =
      static_cast<double>(after.pool_hits - before.pool_hits) * inv;
}

void BM_TransformerLayerForwardBackward(benchmark::State& state) {
  Rng rng(7);
  nn::TransformerEncoderLayer layer(32, 4, 128, &rng);
  la::Matrix x(20, 32);
  la::GaussianInit(&x, &rng, 1.0f);
  la::Matrix mask(20, 20);
  std::vector<nn::Variable> params;
  layer.CollectParameters(&params);
  nn::Adam adam(params, 1e-3f);
  auto step = [&] {
    nn::Variable input(x, /*requires_grad=*/true);
    nn::Variable out = layer.Forward(input, mask, 0.0, &rng, true);
    nn::Backward(nn::SumToScalar(out));
    adam.Step();
  };
  for (int i = 0; i < 3; ++i) step();  // warm the buffer pool
  const auto before = la::BufferPool::GetStats();
  uint64_t steps = 0;
  for (auto _ : state) {
    step();
    ++steps;
  }
  SetPoolCounters(state, before, steps);
}
BENCHMARK(BM_TransformerLayerForwardBackward);

void BM_MiniBertTrainStep(benchmark::State& state) {
  // A full mini_bert fine-tuning step: encode -> mean-pool -> linear head
  // -> softmax cross-entropy -> backward -> Adam. The end-to-end number
  // behind the kernel-layer speedup claim.
  models::BertConfig config;
  config.layers = 2;
  text::VocabularyBuilder builder;
  const data::Dataset d = BenchDataset(64);
  for (const auto& text : d.Texts()) {
    builder.AddDocument(text::Tokenize(text));
  }
  models::MiniBertBackbone bert(config, builder.Build(1, 4000));

  Rng rng(7);
  nn::Variable head(la::Matrix(config.dim, 2), /*requires_grad=*/true);
  la::GaussianInit(&head.mutable_value(), &rng, 0.05f);
  std::vector<nn::Variable> params = bert.Parameters();
  params.push_back(head);
  nn::Adam adam(params, 1e-4f);

  const std::vector<int32_t> ids = bert.EncodeIds(d[0].text);
  const std::vector<int32_t> labels = {1};
  auto step = [&] {
    nn::Variable hidden = bert.Encode(ids, &rng, /*training=*/true);
    nn::Variable pooled = nn::MeanRows(hidden);
    nn::Variable logits = nn::MatMul(pooled, head);
    nn::Backward(nn::SoftmaxCrossEntropy(logits, labels));
    adam.Step();
  };
  for (int i = 0; i < 3; ++i) step();  // warm the buffer pool
  const auto before = la::BufferPool::GetStats();
  uint64_t steps = 0;
  for (auto _ : state) {
    step();
    ++steps;
  }
  SetPoolCounters(state, before, steps);
}
BENCHMARK(BM_MiniBertTrainStep);

// ---------------------------------------------------------------------------
// Deep-batch suite (--deep-batch -> BENCH_deep_batch.json): the same
// fine-tune epoch / inference sweep timed per-example (SEMTAG_DEEP_BATCH=1,
// the seed execution) and batched (cap 32), all on one pool thread so the
// ratio isolates minibatching from multithreading.
// ---------------------------------------------------------------------------

/// arg<=1 forces the per-example path; otherwise caps the batch at arg.
void SetDeepBatchCap(int64_t cap) {
  ::setenv("SEMTAG_DEEP_BATCH", std::to_string(cap).c_str(), /*overwrite=*/1);
}

void BM_DeepBatchCnnEpoch(benchmark::State& state) {
  SetGlobalPoolThreads(1);
  SetDeepBatchCap(state.range(0));
  const data::Dataset d = BenchDataset(256);
  for (auto _ : state) {
    models::CnnOptions options;
    options.epochs = 1;
    options.min_optimizer_steps = 8;  // exactly one pass over 256 records
    models::TextCnn model(options);
    SEMTAG_CHECK(model.Train(d).ok());
  }
  ::unsetenv("SEMTAG_DEEP_BATCH");
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_DeepBatchCnnEpoch)->Arg(1)->Arg(32)->Iterations(1);

void BM_DeepBatchLstmEpoch(benchmark::State& state) {
  SetGlobalPoolThreads(1);
  SetDeepBatchCap(state.range(0));
  const data::Dataset d = BenchDataset(256);
  for (auto _ : state) {
    models::LstmOptions options;
    options.epochs = 1;
    options.min_optimizer_steps = 8;  // exactly one pass over 256 records
    models::TextLstm model(options);
    SEMTAG_CHECK(model.Train(d).ok());
  }
  ::unsetenv("SEMTAG_DEEP_BATCH");
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_DeepBatchLstmEpoch)->Arg(1)->Arg(32)->Iterations(1);

void BM_DeepBatchMiniBertFinetuneEpoch(benchmark::State& state) {
  SetGlobalPoolThreads(1);
  SetDeepBatchCap(state.range(0));
  const data::Dataset d = BenchDataset(256);
  models::BertConfig config;
  config.layers = 2;
  text::VocabularyBuilder builder;
  for (const auto& text : d.Texts()) {
    builder.AddDocument(text::Tokenize(text));
  }
  // Randomly initialized backbone: fine-tune throughput does not depend on
  // pretrained weights, and skipping MLM keeps the bench fast.
  models::MiniBertBackbone backbone(config, builder.Build(1, 4000));
  for (auto _ : state) {
    models::BertFinetuneOptions options;
    options.epochs = 1;
    options.min_optimizer_steps = 8;  // exactly one pass over 256 records
    models::MiniBert model("BERT", backbone, options);
    SEMTAG_CHECK(model.Train(d).ok());
  }
  ::unsetenv("SEMTAG_DEEP_BATCH");
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_DeepBatchMiniBertFinetuneEpoch)->Arg(1)->Arg(32)->Iterations(1);

void BM_DeepBatchScoreAll(benchmark::State& state) {
  SetGlobalPoolThreads(1);
  ::setenv("SEMTAG_DEEP_BATCH", "1", 1);
  const data::Dataset d = BenchDataset(512);
  models::CnnOptions options;
  options.epochs = 1;
  options.min_optimizer_steps = 1;
  options.max_train_examples = 128;
  models::TextCnn model(options);
  SEMTAG_CHECK(model.Train(d).ok());
  SetDeepBatchCap(state.range(0));
  const auto texts = d.Texts();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.ScoreAll(texts));
  }
  ::unsetenv("SEMTAG_DEEP_BATCH");
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(texts.size()));
}
BENCHMARK(BM_DeepBatchScoreAll)->Arg(1)->Arg(32)->Iterations(2);

void BM_DeepBatchScoreAllQuant(benchmark::State& state) {
  // Same sweep through the int8 inference tier (SEMTAG_QUANT=1): the
  // batch-32 row against BM_DeepBatchScoreAll/32 isolates what
  // quantization adds on top of minibatching.
  SetGlobalPoolThreads(1);
  ::setenv("SEMTAG_DEEP_BATCH", "1", 1);
  const data::Dataset d = BenchDataset(512);
  models::CnnOptions options;
  options.epochs = 1;
  options.min_optimizer_steps = 1;
  options.max_train_examples = 128;
  models::TextCnn model(options);
  SEMTAG_CHECK(model.Train(d).ok());
  SetDeepBatchCap(state.range(0));
  ::setenv("SEMTAG_QUANT", "1", 1);
  const auto texts = d.Texts();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.ScoreAll(texts));
  }
  ::unsetenv("SEMTAG_QUANT");
  ::unsetenv("SEMTAG_DEEP_BATCH");
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(texts.size()));
}
BENCHMARK(BM_DeepBatchScoreAllQuant)->Arg(1)->Arg(32)->Iterations(2);

}  // namespace
}  // namespace semtag

int main(int argc, char** argv) {
  semtag::SetLogLevel(semtag::LogLevel::kWarning);
  // --deep-batch runs the BM_DeepBatch* suite -> BENCH_deep_batch.json
  // (the tracked per-example vs batch-32 comparison). A bare run keeps the
  // full suite with google-benchmark's default output. Explicit
  // --benchmark_out= / --benchmark_filter= win over the defaults.
  bool deep_batch = false, has_out = false, has_filter = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--deep-batch") == 0) {
      deep_batch = true;
      continue;
    }
    // --metrics[=path] / --trace[=path]: arm the observability layer
    // (flushed at exit), consumed before google-benchmark sees argv.
    if (i > 0 && semtag::obs::HandleObsFlag(argv[i])) continue;
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
    if (std::strncmp(argv[i], "--benchmark_filter", 18) == 0) {
      has_filter = true;
    }
    args.push_back(argv[i]);
  }
  // Stamp the semtag build type into the JSON context and warn when these
  // numbers come from a debug build (see bench_util.cc).
  benchmark::AddCustomContext("semtag_build_type",
                              semtag::bench::LibraryBuildType());
  benchmark::AddCustomContext("host_cores",
                              std::to_string(semtag::bench::HostCores()));
#ifndef NDEBUG
  std::printf("*** WARNING: DEBUG build — timings are not meaningful and\n"
              "*** must not be recorded in BENCH_*.json. Reconfigure with\n"
              "*** -DCMAKE_BUILD_TYPE=Release first.\n");
#endif
  char deep_out[] = "--benchmark_out=BENCH_deep_batch.json";
  char deep_fmt[] = "--benchmark_out_format=json";
  char deep_filter[] = "--benchmark_filter=^BM_DeepBatch";
  if (deep_batch) {
    if (!has_out) {
      args.push_back(deep_out);
      args.push_back(deep_fmt);
    }
    if (!has_filter) args.push_back(deep_filter);
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
