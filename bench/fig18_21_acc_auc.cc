// Reproduces appendix Figures 18-21: Accuracy and AUC of the five
// representative models on all 21 datasets, grouped by ratio as in
// Figures 1/2. The appendix's point: unlike F1, Accuracy and AUC do not
// correlate with the label ratio (e.g. QUOTE at 1.6% positives scores
// ~0.99 accuracy), which is why F1 is the study's primary metric.

#include <cstdio>

#include "bench_util.h"
#include "core/experiment.h"

namespace semtag {
namespace {

void PrintGroup(core::ExperimentRunner* runner, const char* title,
                const std::vector<data::DatasetSpec>& specs,
                bool accuracy) {
  std::printf("%s\n\n", title);
  bench::Table table({"Dataset", "LR", "SVM", "CNN", "LSTM", "BERT"});
  for (const auto& spec : specs) {
    std::vector<std::string> row = {spec.name};
    for (auto kind : models::RepresentativeModels()) {
      const auto result = runner->Run(spec, kind);
      row.push_back(bench::Fmt(accuracy ? result.accuracy : result.auc));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
}

int Main(int argc, char** argv) {
  bench::BenchSetup("Figures 18-21 - Accuracy and AUC views",
                    "Li et al., VLDB 2020, appendix 'Performance on More "
                    "Evaluation Measures'", argc, argv);
  core::ExperimentRunner runner;
  PrintGroup(&runner, "Figure 18: Accuracy, datasets with >= 25% positives",
             bench::HighRatioSpecs(), /*accuracy=*/true);
  PrintGroup(&runner, "Figure 19: Accuracy, datasets with < 25% positives",
             bench::LowRatioSpecs(), /*accuracy=*/true);
  PrintGroup(&runner, "Figure 20: AUC, datasets with >= 25% positives",
             bench::HighRatioSpecs(), /*accuracy=*/false);
  PrintGroup(&runner, "Figure 21: AUC, datasets with < 25% positives",
             bench::LowRatioSpecs(), /*accuracy=*/false);
  std::printf(
      "Expected shape: imbalanced datasets reach high accuracy/AUC even "
      "where F1 is poor (the paper's QUOTE example), so the ratio effect "
      "visible in F1 disappears under these metrics.\n");
  return 0;
}

}  // namespace
}  // namespace semtag

int main(int argc, char** argv) { return semtag::Main(argc, argv); }
