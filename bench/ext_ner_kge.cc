// Reproduces the appendix extension "Extension to NER and Knowledge
// Extraction": BIO (token-level definition tagging, ~470K labels -> large)
// and DEF (sentence-level definition detection, ~18K labels -> small) from
// SemEval 2020 task 6. BIO is evaluated as a three-class problem via
// one-vs-rest binary taggers over token context windows; DEF is the
// standard binary pipeline.

#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "core/experiment.h"
#include "core/multiclass.h"
#include "data/generator.h"
#include "data/specs.h"
#include "eval/metrics.h"

namespace semtag {
namespace {

/// A token-tagged corpus: sentences where some contain one contiguous
/// "definition" span (drawn from a dedicated topic); tokens are labeled
/// B (span start) / I (inside) / O (outside).
struct TokenCorpus {
  std::vector<std::string> windows;  // context window per token
  std::vector<char> labels;         // 'B', 'I', 'O'
};

TokenCorpus GenerateBio(int num_sentences, uint64_t seed) {
  const auto& lang = data::SharedLanguage();
  Rng rng(seed);
  ZipfTable background(2000, 1.05);
  ZipfTable in_topic(data::Language::kTopicSize, 0.4);
  constexpr int kDefinitionTopic = 30;
  TokenCorpus corpus;
  for (int s = 0; s < num_sentences; ++s) {
    const int len = static_cast<int>(rng.UniformInt(8, 20));
    std::vector<std::string> tokens;
    std::vector<char> labels(static_cast<size_t>(len), 'O');
    // ~35% of sentences contain a definition span of 3-6 tokens.
    int span_start = -1, span_len = 0;
    if (rng.Bernoulli(0.35)) {
      span_len = static_cast<int>(rng.UniformInt(3, 6));
      span_start = static_cast<int>(rng.UniformInt(0, len - span_len));
    }
    for (int i = 0; i < len; ++i) {
      const bool in_span = span_start >= 0 && i >= span_start &&
                           i < span_start + span_len;
      if (in_span) {
        // Definition spans mix a cue lexicon with ordinary words, so the
        // task is genuinely hard (the paper's B/I F1s are 0.01-0.15).
        if (rng.Bernoulli(0.16)) {
          tokens.push_back(lang.Word(lang.TopicWordId(
              kDefinitionTopic, static_cast<int>(in_topic.Sample(&rng)))));
        } else {
          tokens.push_back(
              lang.Word(static_cast<int>(background.Sample(&rng))));
        }
        labels[static_cast<size_t>(i)] = i == span_start ? 'B' : 'I';
      } else {
        tokens.push_back(
            lang.Word(static_cast<int>(background.Sample(&rng))));
      }
    }
    // Emit one window per token: the token plus +/-2 context.
    for (int i = 0; i < len; ++i) {
      std::string window;
      for (int j = std::max(0, i - 2);
           j <= std::min(len - 1, i + 2); ++j) {
        if (!window.empty()) window.push_back(' ');
        window += tokens[static_cast<size_t>(j)];
      }
      corpus.windows.push_back(std::move(window));
      corpus.labels.push_back(labels[static_cast<size_t>(i)]);
    }
  }
  return corpus;
}

void RunBio() {
  std::printf("BIO (NER-style token tagging, evaluated as a three-class\n"
              "problem via one-vs-rest binary taggers; paper F1s:\n"
              "  B: LR .01 SVM .08 CNN .04 LSTM .08 BERT .08\n"
              "  I: LR .07 SVM .13 CNN .06 LSTM .15 BERT .13\n"
              "  O: all .85)\n\n");
  // ~2400 sentences -> ~33K token labels (scaled from the paper's 470K).
  const TokenCorpus corpus = GenerateBio(2400, 606);
  const std::vector<std::string> classes = {"B", "I", "O"};
  std::vector<core::MultiClassExample> all;
  for (size_t i = 0; i < corpus.windows.size(); ++i) {
    core::MultiClassExample e;
    e.text = corpus.windows[i];
    e.label = corpus.labels[i] == 'B' ? 0 : corpus.labels[i] == 'I' ? 1 : 2;
    all.push_back(std::move(e));
  }
  Rng rng(131);
  rng.Shuffle(&all);
  const size_t n_train = all.size() * 8 / 10;
  const std::vector<core::MultiClassExample> train(
      all.begin(), all.begin() + static_cast<long>(n_train));
  const std::vector<core::MultiClassExample> test(
      all.begin() + static_cast<long>(n_train), all.end());

  bench::Table table({"Label", "LR", "SVM", "CNN", "LSTM", "BERT"});
  std::vector<std::vector<std::string>> rows = {
      {"B"}, {"I"}, {"O"}};
  for (auto kind : models::RepresentativeModels()) {
    auto tagger = core::MultiClassTagger::Train(classes, train, kind);
    if (!tagger.ok()) {
      for (auto& row : rows) row.push_back("-");
      continue;
    }
    const auto per_class = (*tagger)->Evaluate(test);
    for (size_t c = 0; c < per_class.size(); ++c) {
      rows[c].push_back(bench::Fmt(per_class[c].f1));
    }
  }
  for (auto& row : rows) table.AddRow(std::move(row));
  table.Print();
}

void RunDef() {
  std::printf("DEF (sentence-level definition detection; paper F1 for "
              "label T: LR .72 SVM .72 CNN .68 LSTM .66 BERT .80)\n\n");
  data::GeneratorConfig config;
  config.bg_vocab = 2000;
  config.signal_topic = 30;
  config.positive_topics = {31, 32};
  config.negative_topics = {25, 26, 27};
  config.signal_strength = 0.16;
  config.signal_leak = 0.25;
  config.topic_purity = 0.85;
  config.topic_prob = 0.35;
  config.conjunction = 0.25;
  config.seed = 607;
  data::Dataset dataset = data::GenerateDataset(
      data::SharedLanguage(), config, "DEF", 2500, 0.32);
  Rng rng(607);
  dataset.Shuffle(&rng);
  auto [train, test] = dataset.Split(0.8);
  bench::Table table({"Model", "F1 (label T)"});
  for (auto kind : models::RepresentativeModels()) {
    const auto result = core::TrainAndEvaluate(train, test, kind);
    table.AddRow({result.model, bench::Fmt(result.f1)});
  }
  table.Print();
}

int Main(int argc, char** argv) {
  bench::BenchSetup(
      "Appendix extension - NER (BIO) and Knowledge Extraction (DEF)",
      "Li et al., VLDB 2020, appendix 'Extension to NER and Knowledge "
      "Extraction'", argc, argv);
  RunBio();
  RunDef();
  std::printf(
      "Expected shape: on the large BIO task the best simple and best deep "
      "models are close (B/I F1 very low for everyone, O easy); on the "
      "small DEF task the best deep model clearly beats the best simple "
      "one.\n");
  return 0;
}

}  // namespace
}  // namespace semtag

int main(int argc, char** argv) { return semtag::Main(argc, argv); }
