// GEMM kernel micro-benchmarks: the blocked/unrolled parallel kernels in
// la/matrix.cc against a frozen copy of the pre-threading seed kernel, so
// the perf trajectory is tracked in-repo from the first optimization PR
// onward. Run from the repo root:
//
//   ./build/bench/gemm_kernels
//
// writes google-benchmark JSON to BENCH_gemm.json (override with the
// usual --benchmark_out=...). Thread counts sweep 1/2/4/8 regardless of
// the host's core count — oversubscribed points are reported as-is, they
// tell you what threading costs when the hardware can't back it.

#include <benchmark/benchmark.h>

#include <cstring>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "la/matrix.h"

namespace semtag::la {
namespace {

/// Verbatim copy of the seed MatMul (ikj rank-1 updates with a zero-skip
/// branch, single thread) — the baseline every speedup claim is against.
void MatMulNaiveSeed(const Matrix& a, const Matrix& b, Matrix* out) {
  const size_t m = a.rows(), k = a.cols(), n = b.cols();
  *out = Matrix(m, n);
  for (size_t i = 0; i < m; ++i) {
    const float* arow = a.Row(i);
    float* orow = out->Row(i);
    for (size_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      const float* brow = b.Row(kk);
      for (size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.Normal());
  }
  return m;
}

void SetFlops(benchmark::State& state, size_t n) {
  state.counters["flops"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 2.0 * static_cast<double>(n) *
          static_cast<double>(n) * static_cast<double>(n),
      benchmark::Counter::kIsRate);
}

void BM_MatMul_seed_naive(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Matrix a = RandomMatrix(n, n, 1);
  const Matrix b = RandomMatrix(n, n, 2);
  Matrix out;
  for (auto _ : state) {
    MatMulNaiveSeed(a, b, &out);
    benchmark::DoNotOptimize(out.data());
  }
  SetFlops(state, n);
}
BENCHMARK(BM_MatMul_seed_naive)->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMicrosecond);

void BM_MatMul(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  SetGlobalPoolThreads(static_cast<int>(state.range(1)));
  const Matrix a = RandomMatrix(n, n, 1);
  const Matrix b = RandomMatrix(n, n, 2);
  Matrix out;
  for (auto _ : state) {
    MatMul(a, b, &out);
    benchmark::DoNotOptimize(out.data());
  }
  SetFlops(state, n);
}
BENCHMARK(BM_MatMul)
    ->ArgsProduct({{32, 64, 128, 256, 512}, {1, 2, 4, 8}})
    ->ArgNames({"n", "threads"})
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

void BM_MatMulTransA(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  SetGlobalPoolThreads(static_cast<int>(state.range(1)));
  const Matrix at = RandomMatrix(n, n, 3);
  const Matrix b = RandomMatrix(n, n, 4);
  Matrix out;
  for (auto _ : state) {
    MatMulTransA(at, b, &out);
    benchmark::DoNotOptimize(out.data());
  }
  SetFlops(state, n);
}
BENCHMARK(BM_MatMulTransA)
    ->ArgsProduct({{256}, {1, 2, 4, 8}})
    ->ArgNames({"n", "threads"})
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

void BM_MatMulTransB(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  SetGlobalPoolThreads(static_cast<int>(state.range(1)));
  const Matrix a = RandomMatrix(n, n, 5);
  const Matrix bt = RandomMatrix(n, n, 6);
  Matrix out;
  for (auto _ : state) {
    MatMulTransB(a, bt, &out);
    benchmark::DoNotOptimize(out.data());
  }
  SetFlops(state, n);
}
BENCHMARK(BM_MatMulTransB)
    ->ArgsProduct({{256}, {1, 2, 4, 8}})
    ->ArgNames({"n", "threads"})
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

void BM_Transpose(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Matrix a = RandomMatrix(n, n, 7);
  for (auto _ : state) {
    Matrix t = a.Transposed();
    benchmark::DoNotOptimize(t.data());
  }
}
BENCHMARK(BM_Transpose)->Arg(256)->Arg(1024)->Unit(benchmark::kMicrosecond);

void BM_Dot(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Matrix a = RandomMatrix(1, n, 8);
  const Matrix b = RandomMatrix(1, n, 9);
  for (auto _ : state) {
    float d = Dot(a.Row(0), b.Row(0), n);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_Dot)->Arg(1024)->Arg(65536);

}  // namespace
}  // namespace semtag::la

int main(int argc, char** argv) {
  // Default the JSON dump to BENCH_gemm.json so a bare run from the repo
  // root refreshes the tracked results file; any explicit
  // --benchmark_out=... wins.
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  }
  std::vector<char*> args(argv, argv + argc);
  char default_out[] = "--benchmark_out=BENCH_gemm.json";
  char default_fmt[] = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(default_out);
    args.push_back(default_fmt);
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
