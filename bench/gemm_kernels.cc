// GEMM kernel micro-benchmarks: the blocked/unrolled parallel kernels in
// la/matrix.cc against a frozen copy of the pre-threading seed kernel, so
// the perf trajectory is tracked in-repo from the first optimization PR
// onward. Run from the repo root:
//
//   ./build/bench/gemm_kernels             # GEMM suite -> BENCH_gemm.json
//   ./build/bench/gemm_kernels --kernels   # per-kernel GF/s per SIMD tier
//                                          #   -> BENCH_kernels.json
//   ./build/bench/gemm_kernels --smoke     # run every dispatched kernel
//                                          #   once per tier and exit (CI)
//
// (override the output with the usual --benchmark_out=...). Thread counts
// sweep 1/2/4/8 regardless of the host's core count — oversubscribed
// points are reported as-is, they tell you what threading costs when the
// hardware can't back it.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "bench_util.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "data/generator.h"
#include "data/specs.h"
#include "la/buffer_pool.h"
#include "la/init.h"
#include "la/kernels.h"
#include "la/matrix.h"
#include "la/quant.h"
#include "la/sparse.h"
#include "models/deep/mini_bert.h"
#include "obs/metrics.h"
#include "nn/layers.h"
#include "nn/ops.h"
#include "nn/optimizer.h"
#include "nn/variable.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace semtag::la {
namespace {

/// Verbatim copy of the seed MatMul (ikj rank-1 updates with a zero-skip
/// branch, single thread) — the baseline every speedup claim is against.
void MatMulNaiveSeed(const Matrix& a, const Matrix& b, Matrix* out) {
  const size_t m = a.rows(), k = a.cols(), n = b.cols();
  *out = Matrix(m, n);
  for (size_t i = 0; i < m; ++i) {
    const float* arow = a.Row(i);
    float* orow = out->Row(i);
    for (size_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      const float* brow = b.Row(kk);
      for (size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.Normal());
  }
  return m;
}

void SetFlops(benchmark::State& state, size_t n) {
  state.counters["flops"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 2.0 * static_cast<double>(n) *
          static_cast<double>(n) * static_cast<double>(n),
      benchmark::Counter::kIsRate);
}

void BM_MatMul_seed_naive(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Matrix a = RandomMatrix(n, n, 1);
  const Matrix b = RandomMatrix(n, n, 2);
  Matrix out;
  for (auto _ : state) {
    MatMulNaiveSeed(a, b, &out);
    benchmark::DoNotOptimize(out.data());
  }
  SetFlops(state, n);
}
BENCHMARK(BM_MatMul_seed_naive)->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMicrosecond);

void BM_MatMul(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  SetGlobalPoolThreads(static_cast<int>(state.range(1)));
  const Matrix a = RandomMatrix(n, n, 1);
  const Matrix b = RandomMatrix(n, n, 2);
  Matrix out;
  for (auto _ : state) {
    MatMul(a, b, &out);
    benchmark::DoNotOptimize(out.data());
  }
  SetFlops(state, n);
}
BENCHMARK(BM_MatMul)
    ->ArgsProduct({{32, 64, 128, 256, 512}, {1, 2, 4, 8}})
    ->ArgNames({"n", "threads"})
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

void BM_MatMulTransA(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  SetGlobalPoolThreads(static_cast<int>(state.range(1)));
  const Matrix at = RandomMatrix(n, n, 3);
  const Matrix b = RandomMatrix(n, n, 4);
  Matrix out;
  for (auto _ : state) {
    MatMulTransA(at, b, &out);
    benchmark::DoNotOptimize(out.data());
  }
  SetFlops(state, n);
}
BENCHMARK(BM_MatMulTransA)
    ->ArgsProduct({{256}, {1, 2, 4, 8}})
    ->ArgNames({"n", "threads"})
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

void BM_MatMulTransB(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  SetGlobalPoolThreads(static_cast<int>(state.range(1)));
  const Matrix a = RandomMatrix(n, n, 5);
  const Matrix bt = RandomMatrix(n, n, 6);
  Matrix out;
  for (auto _ : state) {
    MatMulTransB(a, bt, &out);
    benchmark::DoNotOptimize(out.data());
  }
  SetFlops(state, n);
}
BENCHMARK(BM_MatMulTransB)
    ->ArgsProduct({{256}, {1, 2, 4, 8}})
    ->ArgNames({"n", "threads"})
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

void BM_Transpose(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Matrix a = RandomMatrix(n, n, 7);
  for (auto _ : state) {
    Matrix t = a.Transposed();
    benchmark::DoNotOptimize(t.data());
  }
}
BENCHMARK(BM_Transpose)->Arg(256)->Arg(1024)->Unit(benchmark::kMicrosecond);

void BM_Dot(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Matrix a = RandomMatrix(1, n, 8);
  const Matrix b = RandomMatrix(1, n, 9);
  for (auto _ : state) {
    float d = Dot(a.Row(0), b.Row(0), n);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_Dot)->Arg(1024)->Arg(65536);

// ---------------------------------------------------------------------------
// Per-kernel suite (--kernels): GF/s (or elements/s) for each dispatched
// kernel at every compiled-in SIMD tier, plus BufferPool allocations/step
// for a transformer training step. Registered at runtime so only tiers the
// host supports appear in BENCH_kernels.json.
// ---------------------------------------------------------------------------

std::vector<SimdLevel> AllAvailableLevels() {
  std::vector<SimdLevel> levels = {SimdLevel::kScalar};
  for (SimdLevel level : {SimdLevel::kSse2, SimdLevel::kAvx2}) {
    if (SimdLevelAvailable(level)) levels.push_back(level);
  }
  return levels;
}

/// One working set shared by every kernel benchmark: vectors long enough
/// to stream (L2-resident), reinitialized per benchmark from a fixed seed.
struct KernelBenchData {
  static constexpr size_t kN = 16384;
  static constexpr size_t kNnz = 1024;
  Matrix a, b0, b1, b2, b3, out0, out1;
  std::vector<SparseEntry> entries;

  KernelBenchData() {
    Rng rng(31);
    a = RandomMatrix(1, kN, 41);
    b0 = RandomMatrix(1, kN, 42);
    b1 = RandomMatrix(1, kN, 43);
    b2 = RandomMatrix(1, kN, 44);
    b3 = RandomMatrix(1, kN, 45);
    out0 = RandomMatrix(1, kN, 46);
    out1 = RandomMatrix(1, kN, 47);
    entries.resize(kNnz);
    for (auto& e : entries) {
      e.index = static_cast<uint32_t>(rng.Uniform(kN));
      e.value = static_cast<float>(rng.Normal());
    }
  }
};

void SetRate(benchmark::State& state, const char* name, double per_iter) {
  state.counters[name] = benchmark::Counter(
      static_cast<double>(state.iterations()) * per_iter,
      benchmark::Counter::kIsRate);
}

/// One fine-tuned mini-BERT shared by the fp32/int8 ScoreAll pair: trained
/// lazily on first use so a filtered run that skips both benchmarks pays
/// nothing. The backbone is randomly initialized (inference throughput
/// does not depend on pretrained weights).
struct QuantScoreAllFixture {
  std::unique_ptr<models::MiniBertBackbone> backbone;
  std::unique_ptr<models::MiniBert> model;
  std::vector<std::string> texts;

  QuantScoreAllFixture() {
    data::GeneratorConfig gc;
    gc.bg_vocab = 2000;
    gc.signal_topic = 16;
    gc.positive_topics = {17, 18};
    gc.negative_topics = {19, 20};
    gc.seed = 99;
    const data::Dataset d = data::GenerateDataset(
        data::SharedLanguage(), gc, "bench", 512, 0.5);
    // BERT-base width (d=768/heads=12/ffn=3072). At the paper-scale d=32
    // the encoder GEMMs are only ~25% of ScoreAll (softmax/layernorm/
    // fp32-attention and graph overhead dominate; DESIGN.md "Batched
    // execution"), which Amdahl-caps any GEMM-tier speedup near 1.3x —
    // measured 1.36x. The int8 tier exists for transformer widths where
    // inference is GEMM-dominated, so the claim is measured there.
    models::BertConfig config;
    config.layers = 2;
    config.dim = 768;
    config.heads = 12;
    config.ffn = 3072;
    text::VocabularyBuilder builder;
    for (const auto& text : d.Texts()) {
      builder.AddDocument(text::Tokenize(text));
    }
    backbone = std::make_unique<models::MiniBertBackbone>(
        config, builder.Build(1, 4000));
    models::BertFinetuneOptions options;
    options.epochs = 1;
    options.min_optimizer_steps = 1;
    options.max_train_examples = 64;
    model = std::make_unique<models::MiniBert>("BERT", *backbone, options);
    SEMTAG_CHECK(model->Train(d).ok());
    // 128 texts keeps one fp32 iteration at BERT-base width around two
    // seconds; items_per_second normalizes, so the pair stays comparable.
    texts = d.Texts();
    texts.resize(128);
  }
};

QuantScoreAllFixture& ScoreAllFixture() {
  static QuantScoreAllFixture fixture;
  return fixture;
}

/// Mini-BERT batched inference end to end, fp32 vs the int8 tier — the
/// pair the quantization speedup claim is measured on. Single pool thread
/// so the ratio isolates the kernel change from threading.
void RegisterQuantScoreAllBenches() {
  benchmark::RegisterBenchmark(
      "Kernel_MiniBertScoreAll/fp32", [](benchmark::State& state) {
        SetGlobalPoolThreads(1);
        auto& f = ScoreAllFixture();
        ::unsetenv("SEMTAG_QUANT");
        for (auto _ : state) {
          benchmark::DoNotOptimize(f.model->ScoreAll(f.texts));
        }
        state.SetItemsProcessed(state.iterations() *
                                static_cast<int64_t>(f.texts.size()));
      });
  benchmark::RegisterBenchmark(
      "Kernel_MiniBertScoreAll/int8", [](benchmark::State& state) {
        SetGlobalPoolThreads(1);
        auto& f = ScoreAllFixture();
        ::setenv("SEMTAG_QUANT", "1", /*overwrite=*/1);
        for (auto _ : state) {
          benchmark::DoNotOptimize(f.model->ScoreAll(f.texts));
        }
        ::unsetenv("SEMTAG_QUANT");
        state.SetItemsProcessed(state.iterations() *
                                static_cast<int64_t>(f.texts.size()));
      });
}

void RegisterKernelBenches() {
  constexpr size_t kN = KernelBenchData::kN;
  constexpr size_t kNnz = KernelBenchData::kNnz;
  for (SimdLevel level : AllAvailableLevels()) {
    const KernelTable* kt = &KernelTableFor(level);
    const std::string tier = std::string("/") + SimdLevelName(level);

    benchmark::RegisterBenchmark(
        ("Kernel_gemm_update4" + tier).c_str(),
        [kt](benchmark::State& state) {
          KernelBenchData d;
          for (auto _ : state) {
            kt->gemm_update4(d.out0.data(), d.b0.data(), d.b1.data(),
                             d.b2.data(), d.b3.data(), 0.5f, -0.25f, 1.5f,
                             -0.125f, kN);
            benchmark::DoNotOptimize(d.out0.data());
          }
          SetRate(state, "flops", 8.0 * kN);
        });

    benchmark::RegisterBenchmark(
        ("Kernel_gemm_update4x2" + tier).c_str(),
        [kt](benchmark::State& state) {
          KernelBenchData d;
          const float a0[4] = {0.5f, -0.25f, 1.5f, -0.125f};
          const float a1[4] = {1.0f, 0.75f, -0.5f, 0.25f};
          for (auto _ : state) {
            kt->gemm_update4x2(d.out0.data(), d.out1.data(), d.b0.data(),
                               d.b1.data(), d.b2.data(), d.b3.data(), a0, a1,
                               kN);
            benchmark::DoNotOptimize(d.out0.data());
          }
          SetRate(state, "flops", 16.0 * kN);
        });

    benchmark::RegisterBenchmark(
        ("Kernel_axpy" + tier).c_str(), [kt](benchmark::State& state) {
          KernelBenchData d;
          for (auto _ : state) {
            kt->axpy(d.out0.data(), d.b0.data(), 1e-4f, kN);
            benchmark::DoNotOptimize(d.out0.data());
          }
          SetRate(state, "flops", 2.0 * kN);
        });

    benchmark::RegisterBenchmark(
        ("Kernel_dot" + tier).c_str(), [kt](benchmark::State& state) {
          KernelBenchData d;
          for (auto _ : state) {
            float v = kt->dot(d.a.data(), d.b0.data(), kN);
            benchmark::DoNotOptimize(v);
          }
          SetRate(state, "flops", 2.0 * kN);
        });

    benchmark::RegisterBenchmark(
        ("Kernel_dot4" + tier).c_str(), [kt](benchmark::State& state) {
          KernelBenchData d;
          float out[4];
          for (auto _ : state) {
            kt->dot4(d.a.data(), d.b0.data(), d.b1.data(), d.b2.data(),
                     d.b3.data(), kN, out);
            benchmark::DoNotOptimize(out[0]);
          }
          SetRate(state, "flops", 8.0 * kN);
        });

    benchmark::RegisterBenchmark(
        ("Kernel_softmax_row" + tier).c_str(),
        [kt](benchmark::State& state) {
          KernelBenchData d;
          for (auto _ : state) {
            std::memcpy(d.out0.data(), d.a.data(), kN * sizeof(float));
            kt->softmax_row(d.out0.data(), kN);
            benchmark::DoNotOptimize(d.out0.data());
          }
          SetRate(state, "elems", static_cast<double>(kN));
        });

    benchmark::RegisterBenchmark(
        ("Kernel_layernorm_row" + tier).c_str(),
        [kt](benchmark::State& state) {
          KernelBenchData d;
          for (auto _ : state) {
            float istd = kt->layernorm_row(d.out0.data(), d.a.data(), kN,
                                           1e-5f);
            benchmark::DoNotOptimize(istd);
          }
          SetRate(state, "elems", static_cast<double>(kN));
        });

    benchmark::RegisterBenchmark(
        ("Kernel_vexp" + tier).c_str(), [kt](benchmark::State& state) {
          KernelBenchData d;
          for (auto _ : state) {
            std::memcpy(d.out0.data(), d.a.data(), kN * sizeof(float));
            kt->vexp(d.out0.data(), kN);
            benchmark::DoNotOptimize(d.out0.data());
          }
          SetRate(state, "elems", static_cast<double>(kN));
        });

    benchmark::RegisterBenchmark(
        ("Kernel_vtanh" + tier).c_str(), [kt](benchmark::State& state) {
          KernelBenchData d;
          for (auto _ : state) {
            std::memcpy(d.out0.data(), d.a.data(), kN * sizeof(float));
            kt->vtanh(d.out0.data(), kN);
            benchmark::DoNotOptimize(d.out0.data());
          }
          SetRate(state, "elems", static_cast<double>(kN));
        });

    benchmark::RegisterBenchmark(
        ("Kernel_adam_update" + tier).c_str(),
        [kt](benchmark::State& state) {
          KernelBenchData d;
          Matrix m = RandomMatrix(1, kN, 48);
          Matrix v = RandomMatrix(1, kN, 49);
          for (float* p = v.data(); p < v.data() + kN; ++p) {
            *p = *p * *p;  // v must be non-negative
          }
          for (auto _ : state) {
            kt->adam_update(d.out0.data(), d.b0.data(), m.data(), v.data(),
                            kN, 1e-3f, 0.9f, 0.999f, 1e-8f, 0.1f, 0.001f);
            benchmark::DoNotOptimize(d.out0.data());
          }
          SetRate(state, "elems", static_cast<double>(kN));
        });

    benchmark::RegisterBenchmark(
        ("Kernel_sparse_dot" + tier).c_str(),
        [kt](benchmark::State& state) {
          KernelBenchData d;
          for (auto _ : state) {
            float v = kt->sparse_dot(d.entries.data(), kNnz, d.a.data());
            benchmark::DoNotOptimize(v);
          }
          SetRate(state, "flops", 2.0 * kNnz);
        });

    // Int8 inference-tier kernels. "flops" counts the equivalent fp32
    // multiply-adds so the int8 rows compare directly against Kernel_dot /
    // Kernel_dot4 at the same tier.
    benchmark::RegisterBenchmark(
        ("Kernel_quant_quantize_row_i8" + tier).c_str(),
        [kt](benchmark::State& state) {
          KernelBenchData d;
          std::vector<int8_t> q(kN);
          for (auto _ : state) {
            float s = kt->quantize_row_i8(d.a.data(), kN, q.data());
            benchmark::DoNotOptimize(s);
            benchmark::DoNotOptimize(q.data());
          }
          SetRate(state, "elems", static_cast<double>(kN));
        });

    benchmark::RegisterBenchmark(
        ("Kernel_quant_dot_i8" + tier).c_str(),
        [kt](benchmark::State& state) {
          KernelBenchData d;
          std::vector<int8_t> qa(kN), qb(kN);
          kt->quantize_row_i8(d.a.data(), kN, qa.data());
          kt->quantize_row_i8(d.b0.data(), kN, qb.data());
          for (auto _ : state) {
            int32_t v = kt->dot_i8(qa.data(), qb.data(), kN);
            benchmark::DoNotOptimize(v);
          }
          SetRate(state, "flops", 2.0 * kN);
        });

    benchmark::RegisterBenchmark(
        ("Kernel_quant_dot4_i8" + tier).c_str(),
        [kt](benchmark::State& state) {
          KernelBenchData d;
          std::vector<int8_t> qa(kN), q0(kN), q1(kN), q2(kN), q3(kN);
          kt->quantize_row_i8(d.a.data(), kN, qa.data());
          kt->quantize_row_i8(d.b0.data(), kN, q0.data());
          kt->quantize_row_i8(d.b1.data(), kN, q1.data());
          kt->quantize_row_i8(d.b2.data(), kN, q2.data());
          kt->quantize_row_i8(d.b3.data(), kN, q3.data());
          int32_t out[4];
          for (auto _ : state) {
            kt->dot4_i8(qa.data(), q0.data(), q1.data(), q2.data(),
                        q3.data(), kN, out);
            benchmark::DoNotOptimize(out[0]);
          }
          SetRate(state, "flops", 8.0 * kN);
        });

    benchmark::RegisterBenchmark(
        ("Kernel_quant_dequant_affine_row" + tier).c_str(),
        [kt](benchmark::State& state) {
          KernelBenchData d;
          std::vector<int32_t> acc(kN);
          for (size_t i = 0; i < kN; ++i) {
            acc[i] = static_cast<int32_t>(i * 37) - 8192;
          }
          for (auto _ : state) {
            kt->dequant_affine_row(d.out0.data(), acc.data(), 0.01f,
                                   d.b0.data(), d.b1.data(), kN,
                                   /*fuse_relu=*/true);
            benchmark::DoNotOptimize(d.out0.data());
          }
          SetRate(state, "elems", static_cast<double>(kN));
        });
  }

  RegisterQuantScoreAllBenches();

  // Allocations per training step: the zero-allocation acceptance metric,
  // recorded alongside the kernel rates. Steady state (after a warm-up)
  // must show allocs_per_step == 0.
  benchmark::RegisterBenchmark(
      "Kernel_TrainStepAllocs", [](benchmark::State& state) {
        Rng rng(7);
        nn::TransformerEncoderLayer layer(32, 4, 128, &rng);
        Matrix x(20, 32);
        GaussianInit(&x, &rng, 1.0f);
        Matrix mask(20, 20);
        std::vector<nn::Variable> params;
        layer.CollectParameters(&params);
        nn::Adam adam(params, 1e-3f);
        auto step = [&] {
          nn::Variable input(x, /*requires_grad=*/true);
          nn::Variable out = layer.Forward(input, mask, 0.0, &rng, true);
          nn::Backward(nn::SumToScalar(out));
          adam.Step();
        };
        for (int i = 0; i < 3; ++i) step();  // warm the pool
        const auto before = BufferPool::GetStats();
        uint64_t steps = 0;
        for (auto _ : state) {
          step();
          ++steps;
        }
        const auto after = BufferPool::GetStats();
        const double inv_steps = steps > 0 ? 1.0 / static_cast<double>(steps)
                                           : 0.0;
        state.counters["allocs_per_step"] =
            static_cast<double>(after.system_allocs - before.system_allocs) *
            inv_steps;
        state.counters["pool_hits_per_step"] =
            static_cast<double>(after.pool_hits - before.pool_hits) *
            inv_steps;
      });
}

// ---------------------------------------------------------------------------
// Smoke mode (--smoke): call every entry of every compiled-in kernel table
// once on tiny inputs. A crash or non-finite output fails CI; exit 0
// otherwise. Cheap enough to run under every dispatch env setting.
// ---------------------------------------------------------------------------

int RunSmoke() {
  std::printf("active SIMD level: %s\n",
              SimdLevelName(ActiveSimdLevel()));
  for (SimdLevel level : AllAvailableLevels()) {
    const KernelTable& kt = KernelTableFor(level);
    constexpr size_t kN = 37;  // odd: exercises every vector tail
    Matrix a = RandomMatrix(1, kN, 51), b0 = RandomMatrix(1, kN, 52);
    Matrix b1 = RandomMatrix(1, kN, 53), b2 = RandomMatrix(1, kN, 54);
    Matrix b3 = RandomMatrix(1, kN, 55), out0 = RandomMatrix(1, kN, 56);
    Matrix out1 = RandomMatrix(1, kN, 57);
    Matrix m = RandomMatrix(1, kN, 58), v = RandomMatrix(1, kN, 59);
    for (size_t i = 0; i < kN; ++i) v.data()[i] *= v.data()[i];
    const float a0[4] = {0.5f, -0.25f, 1.5f, -0.125f};
    const float a1[4] = {1.0f, 0.75f, -0.5f, 0.25f};
    float d4[4];
    std::vector<SparseEntry> entries(8);
    for (size_t i = 0; i < entries.size(); ++i) {
      entries[i] = {static_cast<uint32_t>(i * 4), 0.5f};
    }

    kt.gemm_update4(out0.data(), b0.data(), b1.data(), b2.data(), b3.data(),
                    a0[0], a0[1], a0[2], a0[3], kN);
    kt.gemm_update4x2(out0.data(), out1.data(), b0.data(), b1.data(),
                      b2.data(), b3.data(), a0, a1, kN);
    kt.axpy(out0.data(), b0.data(), 0.5f, kN);
    kt.dot4(a.data(), b0.data(), b1.data(), b2.data(), b3.data(), kN, d4);
    float acc = kt.dot(a.data(), b0.data(), kN);
    kt.scale(out0.data(), 0.99f, kN);
    kt.vadd(out0.data(), b0.data(), kN);
    kt.vsub(out0.data(), b1.data(), kN);
    kt.hadamard(out0.data(), b2.data(), kN);
    kt.vfill(out1.data(), 0.125f, kN);
    acc += static_cast<float>(kt.sum(a.data(), kN));
    acc += static_cast<float>(kt.sumsq(a.data(), kN));
    acc += kt.vmax(a.data(), kN) + kt.vmin(a.data(), kN);
    kt.softmax_row(out0.data(), kN);
    acc += kt.layernorm_row(out1.data(), a.data(), kN, 1e-5f);
    kt.vexp(out0.data(), kN);
    kt.vtanh(out0.data(), kN);
    kt.vsigmoid(out0.data(), kN);
    kt.vrelu(out0.data(), kN);
    kt.vgelu(out0.data(), kN);
    acc += kt.sparse_dot(entries.data(), entries.size(), a.data());
    kt.sparse_axpy(entries.data(), entries.size(), 0.5f, out1.data());
    kt.adam_update(out1.data(), b0.data(), m.data(), v.data(), kN, 1e-3f,
                   0.9f, 0.999f, 1e-8f, 0.1f, 0.001f);

    // Int8 inference tier: quantize -> integer dots -> fused dequant.
    std::vector<int8_t> qa(kN), qb0(kN), qb1(kN), qb2(kN), qb3(kN);
    const float sa = kt.quantize_row_i8(a.data(), kN, qa.data());
    float w_scales[4];
    w_scales[0] = kt.quantize_row_i8(b0.data(), kN, qb0.data());
    w_scales[1] = kt.quantize_row_i8(b1.data(), kN, qb1.data());
    w_scales[2] = kt.quantize_row_i8(b2.data(), kN, qb2.data());
    w_scales[3] = kt.quantize_row_i8(b3.data(), kN, qb3.data());
    int32_t iacc[4];
    kt.dot4_i8(qa.data(), qb0.data(), qb1.data(), qb2.data(), qb3.data(),
               kN, iacc);
    iacc[0] = kt.dot_i8(qa.data(), qb0.data(), kN);
    float deq[4];
    kt.dequant_affine_row(deq, iacc, sa, w_scales, a0, 4,
                          /*fuse_relu=*/true);
    acc += deq[0] + deq[1] + deq[2] + deq[3] + sa;

    bool finite = std::isfinite(acc);
    for (size_t i = 0; i < kN && finite; ++i) {
      finite = std::isfinite(out0.data()[i]) && std::isfinite(out1.data()[i]);
    }
    if (!finite) {
      std::printf("tier %s: FAILED (non-finite output)\n",
                  SimdLevelName(level));
      return 1;
    }
    std::printf("tier %s: ok\n", SimdLevelName(level));
  }
  return 0;
}

}  // namespace
}  // namespace semtag::la

int main(int argc, char** argv) {
  // Mode flags (consumed here, not passed to google-benchmark):
  //   --smoke    run every kernel once per tier, exit
  //   --kernels  per-kernel suite -> BENCH_kernels.json
  // A bare run keeps the BM_* GEMM suite -> BENCH_gemm.json, so the
  // tracked file stays comparable across PRs. Any explicit
  // --benchmark_out= / --benchmark_filter= wins over the defaults.
  bool smoke = false, kernels = false, has_out = false, has_filter = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      continue;
    }
    if (std::strcmp(argv[i], "--kernels") == 0) {
      kernels = true;
      continue;
    }
    // --metrics[=path] / --trace[=path]: arm the observability layer
    // (flushed at exit), consumed before google-benchmark sees argv.
    if (i > 0 && semtag::obs::HandleObsFlag(argv[i])) continue;
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
    if (std::strncmp(argv[i], "--benchmark_filter", 18) == 0) {
      has_filter = true;
    }
    args.push_back(argv[i]);
  }
  if (smoke) return semtag::la::RunSmoke();
  if (kernels) semtag::la::RegisterKernelBenches();

  // Stamp the semtag build type into the JSON context (google-benchmark's
  // own library_build_type field only describes the benchmark library) and
  // refuse to let debug numbers land silently.
  benchmark::AddCustomContext("semtag_build_type",
                              semtag::bench::LibraryBuildType());
  benchmark::AddCustomContext("host_cores",
                              std::to_string(semtag::bench::HostCores()));
#ifndef NDEBUG
  std::printf("*** WARNING: DEBUG build — timings are not meaningful and\n"
              "*** must not be recorded in BENCH_*.json. Reconfigure with\n"
              "*** -DCMAKE_BUILD_TYPE=Release first.\n");
#endif

  char gemm_out[] = "--benchmark_out=BENCH_gemm.json";
  char kernels_out[] = "--benchmark_out=BENCH_kernels.json";
  char default_fmt[] = "--benchmark_out_format=json";
  char gemm_filter[] = "--benchmark_filter=^BM_";
  char kernels_filter[] = "--benchmark_filter=^Kernel_";
  if (!has_out) {
    args.push_back(kernels ? kernels_out : gemm_out);
    args.push_back(default_fmt);
  }
  if (!has_filter) args.push_back(kernels ? kernels_filter : gemm_filter);
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
