// Reproduces Table 6 (and appendix Figures 14-15): LR and SVM with vs
// without pretrained [CLS] embeddings. The paper: embeddings lift simple
// models most on HOMO (+0.07), HETER (+0.05) and QUOTE (+0.25).

#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "core/experiment.h"

namespace semtag {
namespace {

int Main(int argc, char** argv) {
  bench::BenchSetup(
      "Table 6 / Figures 14-15 - simple models + pretrained embeddings",
      "Li et al., VLDB 2020, Section 5.3 'Effect of pre-trained "
      "embeddings'", argc, argv);
  core::ExperimentRunner runner;

  const struct {
    const char* dataset;
    double paper_lr;
    double paper_lr_eb;
    double paper_svm;
    double paper_svm_eb;
  } rows[] = {
      {"HOMO", 0.87, 0.94, 0.89, 0.93},
      {"HETER", 0.87, 0.92, 0.87, 0.91},
      {"QUOTE", 0.10, 0.35, 0.10, 0.34},
  };

  std::printf("Table 6 - the three datasets the paper highlights:\n\n");
  bench::Table table({"Dataset", "LR (paper)", "LR+eb (paper)",
                      "SVM (paper)", "SVM+eb (paper)"});
  for (const auto& row : rows) {
    const auto spec = *data::FindSpec(row.dataset);
    table.AddRow(
        {row.dataset,
         bench::VsPaper(runner.Run(spec, models::ModelKind::kLr).f1,
                        row.paper_lr),
         bench::VsPaper(
             runner.Run(spec, models::ModelKind::kLrEmbedding).f1,
             row.paper_lr_eb),
         bench::VsPaper(runner.Run(spec, models::ModelKind::kSvm).f1,
                        row.paper_svm),
         bench::VsPaper(
             runner.Run(spec, models::ModelKind::kSvmEmbedding).f1,
             row.paper_svm_eb)});
  }
  table.Print();

  std::printf("Figures 14-15 - embedding gain on every small dataset "
              "(positive delta = pretrained embeddings helped):\n\n");
  bench::Table sweep({"Dataset", "LR", "LR+eb", "delta", "SVM", "SVM+eb",
                      "delta"});
  for (const auto& spec : data::AllDatasetSpecs()) {
    if (data::IsLarge(spec)) continue;  // appendix sweeps small datasets
    const double lr = runner.Run(spec, models::ModelKind::kLr).f1;
    const double lr_eb =
        runner.Run(spec, models::ModelKind::kLrEmbedding).f1;
    const double svm = runner.Run(spec, models::ModelKind::kSvm).f1;
    const double svm_eb =
        runner.Run(spec, models::ModelKind::kSvmEmbedding).f1;
    sweep.AddRow({spec.name, bench::Fmt(lr), bench::Fmt(lr_eb),
                  StrFormat("%+.2f", lr_eb - lr), bench::Fmt(svm),
                  bench::Fmt(svm_eb), StrFormat("%+.2f", svm_eb - svm)});
  }
  sweep.Print();
  return 0;
}

}  // namespace
}  // namespace semtag

int main(int argc, char** argv) { return semtag::Main(argc, argv); }
