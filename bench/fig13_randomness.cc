// Reproduces appendix Figure 13: repeat LR, SVM and BERT on FUNNY and BOOK
// with 3 random seeds, report mean +/- SD, and test LR-vs-BERT and
// SVM-vs-BERT differences with Welch's t test (the paper used GraphPad's
// Student t test, n = 3).

#include <cstdio>
#include <map>

#include "bench_util.h"
#include "common/string_util.h"
#include "core/experiment.h"
#include "eval/stats.h"

namespace semtag {
namespace {

constexpr int kRepetitions = 3;

int Main(int argc, char** argv) {
  bench::BenchSetup("Figure 13 - randomness and statistical significance",
                    "Li et al., VLDB 2020, appendix 'Effect of Randomness'", argc, argv);
  core::ExperimentRunner runner;

  for (const char* name : {"FUNNY", "BOOK"}) {
    const auto spec = *data::FindSpec(name);
    std::printf("%s (mean +/- SD over %d seeds; calibrated F1, as the "
                "appendix compares calibrated models):\n\n",
                name, kRepetitions);
    std::map<std::string, std::vector<double>> f1s;
    for (auto kind : {models::ModelKind::kLr, models::ModelKind::kSvm,
                      models::ModelKind::kBert}) {
      for (uint64_t seed = 0; seed < kRepetitions; ++seed) {
        const auto result = runner.Run(spec, kind, seed);
        f1s[models::ModelKindName(kind)].push_back(result.calibrated_f1);
      }
    }
    bench::Table table({"Model", "mean F1", "SD", "vs BERT (Welch)"});
    for (const char* model : {"LR", "SVM", "BERT"}) {
      const auto& xs = f1s[model];
      std::string vs = "-";
      if (std::string(model) != "BERT") {
        const auto t = eval::WelchTTest(xs, f1s["BERT"]);
        vs = StrFormat("t=%+.2f p=%.3f %s", t.t, t.p_value,
                       t.Stars().c_str());
      }
      table.AddRow({model, bench::Fmt(eval::Mean(xs), 3),
                    bench::Fmt(eval::StdDev(xs), 3), vs});
    }
    table.Print();
  }
  std::printf(
      "Expected shape: at least one simple model is statistically "
      "comparable to or better than BERT on each of the two large dirty "
      "datasets.\n");
  return 0;
}

}  // namespace
}  // namespace semtag

int main(int argc, char** argv) { return semtag::Main(argc, argv); }
