#include "bench_util.h"

#include <cstdio>
#include <thread>

#include "common/logging.h"
#include "common/string_util.h"
#include "obs/metrics.h"

namespace semtag::bench {

const char* LibraryBuildType() {
#ifdef NDEBUG
  return "release";
#else
  return "debug";
#endif
}

int HostCores() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

std::string JsonContextFields() {
  return StrFormat("  \"build\": \"%s\",\n  \"host_cores\": %d,",
                   LibraryBuildType(), HostCores());
}

void BenchSetup(const std::string& title, const std::string& paper_ref) {
  SetLogLevel(LogLevel::kWarning);
  std::printf("== %s ==\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("(synthetic stand-in datasets, scaled per DESIGN.md; compare "
              "shapes, not absolute values)\n");
  std::printf("build: %s\n\n", LibraryBuildType());
#ifndef NDEBUG
  std::printf("*** WARNING: this is a DEBUG build — timings below are not\n"
              "*** meaningful and must not be recorded in BENCH_*.json.\n"
              "*** Reconfigure with -DCMAKE_BUILD_TYPE=Release first.\n\n");
  SEMTAG_LOG(kWarning,
             "bench '%s' running in a debug build; do not record timings",
             title.c_str());
#endif
  std::fflush(stdout);
}

void BenchSetup(const std::string& title, const std::string& paper_ref,
                int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    (void)obs::HandleObsFlag(argv[i]);
  }
  BenchSetup(title, paper_ref);
}

Table::Table(std::vector<std::string> header) {
  rows_.push_back(std::move(header));
}

void Table::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void Table::Print() const {
  std::vector<size_t> widths;
  for (const auto& row : rows_) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  for (size_t r = 0; r < rows_.size(); ++r) {
    std::string line;
    for (size_t c = 0; c < rows_[r].size(); ++c) {
      std::string cell = rows_[r][c];
      cell.resize(widths[c], ' ');
      line += cell;
      if (c + 1 < rows_[r].size()) line += "  ";
    }
    std::printf("%s\n", line.c_str());
    if (r == 0) {
      std::string rule;
      for (size_t c = 0; c < widths.size(); ++c) {
        rule += std::string(widths[c], '-');
        if (c + 1 < widths.size()) rule += "  ";
      }
      std::printf("%s\n", rule.c_str());
    }
  }
  std::printf("\n");
  std::fflush(stdout);
}

std::string Fmt(double value, int decimals) {
  return StrFormat("%.*f", decimals, value);
}

std::string VsPaper(double measured, double paper) {
  return StrFormat("%.2f (paper %.2f)", measured, paper);
}

std::vector<data::DatasetSpec> SpecsInCategory(
    core::DatasetCategory category) {
  std::vector<data::DatasetSpec> out;
  for (const auto& spec : data::AllDatasetSpecs()) {
    if (core::CategorizeSpec(spec) == category) out.push_back(spec);
  }
  return out;
}

std::vector<data::DatasetSpec> HighRatioSpecs() {
  std::vector<data::DatasetSpec> out;
  for (const auto& spec : data::AllDatasetSpecs()) {
    if (data::IsHighRatio(spec)) out.push_back(spec);
  }
  return out;
}

std::vector<data::DatasetSpec> LowRatioSpecs() {
  std::vector<data::DatasetSpec> out;
  for (const auto& spec : data::AllDatasetSpecs()) {
    if (!data::IsHighRatio(spec)) out.push_back(spec);
  }
  return out;
}

}  // namespace semtag::bench
