// Sharded-grid scaling bench -> BENCH_shard.json.
//
// Measures the wall-clock speedup of semtag's multi-process sharded sweep
// (core/shard.h) at N workers versus 1 worker on a reduced grid, plus the
// coordination overhead the claim journal adds. Two regimes:
//
//  - stall-bound: every cell is slowed by an injected 250ms stall
//    (SEMTAG_FAULT machinery), modeling the I/O- and wait-dominated cells
//    of a real sweep (BERT cache misses, disk-bound folds). Stalls overlap
//    across worker processes regardless of core count, so this regime
//    measures the lease/claim protocol's ability to keep workers busy —
//    the ≥3x-at-4-workers gate in CI.
//  - compute-bound: the same grid with no stall. Scaling here is bounded
//    by physical cores; the JSON records host_cores alongside so a 1-core
//    CI runner's ~1x is read as the hardware fact it is, not a regression
//    (DESIGN.md "Sharded execution" discusses this honestly).
//
// Both regimes also assert the merged 4-worker report is bit-identical to
// the 1-worker run — a perf number from a wrong merge is worthless.
//
//   shard_grid [--cells N] [--workers N] [--stall-ms N] [--out FILE]

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/fault.h"
#include "common/file_io.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "core/experiment.h"
#include "core/shard.h"
#include "data/specs.h"
#include "models/factory.h"

namespace semtag {
namespace {

struct RegimeResult {
  double wall_1w = 0;
  double wall_nw = 0;
  int reclaims = 0;
  bool bit_identical = false;
  double speedup() const { return wall_nw > 0 ? wall_1w / wall_nw : 0; }
};

std::vector<core::GridCell> BenchGrid(int n) {
  std::vector<data::DatasetSpec> specs;
  data::DatasetSpec base = data::FindSpec("HETER").ValueOrDie();
  base.scaled_records = 220;
  for (int i = 0; i < n; ++i) {
    data::DatasetSpec spec = base;
    spec.name = StrFormat("BENCH%d", i);
    spec.generator.seed = base.generator.seed + 7000 +
                          static_cast<uint64_t>(i);
    specs.push_back(std::move(spec));
  }
  return core::EnumerateGrid(specs, {models::ModelKind::kLr});
}

double RunOnce(const std::vector<core::GridCell>& cells, int workers,
               const std::string& journal_dir, std::string* canonical,
               int* reclaims) {
  core::ShardOptions opts;
  opts.num_workers = workers;
  opts.lease_ms = 2000;
  opts.cell_retries = 3;
  opts.journal_dir = journal_dir;
  opts.use_cache = false;  // measure execution, not cache replay
  const core::ShardReport report = core::RunShardedGrid(cells, opts);
  if (!report.ok()) {
    std::fprintf(stderr, "sharded run failed: %s\n", report.error.c_str());
    std::exit(1);
  }
  *canonical = core::CanonicalReportCsv(cells, report.report);
  *reclaims += report.leases_reclaimed;
  return report.wall_seconds;
}

RegimeResult RunRegime(const std::vector<core::GridCell>& cells,
                       int workers, const std::string& dir) {
  RegimeResult r;
  std::string base, sharded;
  r.wall_1w = RunOnce(cells, 1, dir + "/w1", &base, &r.reclaims);
  r.wall_nw = RunOnce(cells, workers, dir + "/wN", &sharded, &r.reclaims);
  r.bit_identical = base == sharded;
  return r;
}

int Main(int argc, char** argv) {
  bench::BenchSetup("Sharded grid scaling",
                    "multi-process lease/heartbeat work-stealing", argc,
                    argv);
  int cells_n = 8, workers = 4, stall_ms = 250;
  std::string out = "BENCH_shard.json";
  for (int i = 1; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], "--cells") == 0) cells_n = atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--workers") == 0) workers = atoi(argv[i + 1]);
    if (std::strcmp(argv[i], "--stall-ms") == 0) {
      stall_ms = atoi(argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--out") == 0) out = argv[i + 1];
  }
  const std::string tmp =
      (std::filesystem::temp_directory_path() / "semtag_shard_bench")
          .string();
  std::filesystem::remove_all(tmp);
  setenv("SEMTAG_CACHE_DIR", (tmp + "/cache").c_str(), 1);
  const auto cells = BenchGrid(cells_n);
  const int host_cores = bench::HostCores();

  // Stall-bound regime: the injected stall fires inside every cell of
  // every worker process (fault registry state is inherited across fork).
  SEMTAG_CHECK(
      SetFaultsFromSpec(StrFormat("stall:match=BENCH:ms=%d", stall_ms))
          .ok());
  const RegimeResult stalled = RunRegime(cells, workers, tmp + "/stall");
  ClearFaults();
  const RegimeResult compute = RunRegime(cells, workers, tmp + "/compute");

  bench::Table table({"regime", "1 worker", StrFormat("%d workers", workers),
                      "speedup", "bit-identical"});
  table.AddRow({StrFormat("stall-bound (%dms)", stall_ms),
                bench::Fmt(stalled.wall_1w) + "s",
                bench::Fmt(stalled.wall_nw) + "s",
                bench::Fmt(stalled.speedup()) + "x",
                stalled.bit_identical ? "yes" : "NO"});
  table.AddRow({"compute-bound", bench::Fmt(compute.wall_1w) + "s",
                bench::Fmt(compute.wall_nw) + "s",
                bench::Fmt(compute.speedup()) + "x",
                compute.bit_identical ? "yes" : "NO"});
  table.Print();
  std::printf("\nhost cores: %d (compute-bound scaling is bounded by "
              "this; stall-bound is not)\n",
              host_cores);

  std::string json = "{\n";
  json += "  \"bench\": \"shard_grid\",\n";
  json += bench::JsonContextFields() + "\n";
  json += StrFormat("  \"grid_cells\": %zu,\n"
                    "  \"workers\": %d,\n",
                    cells.size(), workers);
  const auto regime = [](const char* name, const RegimeResult& r,
                         bool last) {
    return StrFormat("  \"%s\": {\"wall_s_1w\": %.3f, \"wall_s_%s\": %.3f, "
                     "\"speedup\": %.2f, \"leases_reclaimed\": %d, "
                     "\"bit_identical\": %s}%s\n",
                     name, r.wall_1w, "nw", r.wall_nw, r.speedup(),
                     r.reclaims, r.bit_identical ? "true" : "false",
                     last ? "" : ",");
  };
  json += StrFormat("  \"stall_ms\": %d,\n", stall_ms);
  json += regime("stall_bound", stalled, false);
  json += regime("compute_bound", compute, true);
  json += "}\n";
  const Status st = WriteFileAtomic(out, json);
  if (!st.ok()) {
    std::fprintf(stderr, "cannot write %s: %s\n", out.c_str(),
                 st.ToString().c_str());
    return 1;
  }
  std::printf("-> %s\n", out.c_str());
  std::filesystem::remove_all(tmp);
  // The CI gate: the claim protocol must not serialize stall-bound cells.
  if (!stalled.bit_identical || !compute.bit_identical) return 1;
  return 0;
}

}  // namespace
}  // namespace semtag

int main(int argc, char** argv) { return semtag::Main(argc, argv); }
