// Online-serving load bench -> BENCH_serve.json.
//
//   serve_load --daemon build/src/cli/semtag_serve [--out BENCH_serve.json]
//              [--seconds N] [--window N]
//   serve_load --smoke --daemon build/src/cli/semtag_serve
//   serve_load --smoke --port N        # against an already-running daemon
//
// The full run spawns the daemon once per configuration — always-deep LSTM
// and the SVM+LSTM cascade, each at batch caps {1, 8, 32} — and drives a
// closed-loop pipelined client (fixed in-flight window) plus one open-loop
// run (fixed arrival rate) against the cascade. Gates, from ISSUE 9:
//   - cap 32 sustains >= 2x the QPS of cap 1 at equal-or-better p99
//     (batching amortizes per-request wakeups and the LSTM's batched
//     ScoreAll is genuinely cheaper per text, even on one core);
//   - the cascade beats always-deep QPS at the pinned accuracy budget
//     (most requests stop at the simple tier).
// --smoke is the CI configuration: a short closed loop against a tiny
// cascade, gating on non-zero QPS, zero protocol errors, and a clean
// SIGTERM drain (daemon exit status 0).
//
//   serve_load --drift --daemon build/src/cli/semtag_serve
//              [--out BENCH_replan.json]
// drives a clean->dirty drift schedule (data/drift.h, SUGG base) at one
// daemon with the online re-planner armed (SEMTAG_REPLAN_*). SUGG at 2000
// records calibrates to a real escalation threshold (~8% of clean holdout
// reaches the CNN), so drifted low-margin traffic genuinely pays the deep
// tier until the re-planner swaps in the dirty cell's simple-only pair.
// Both sides of the throughput gate are measured in the SAME process on
// the SAME drifted records — one epoch-aligned fixed-record drive before
// the detector can fire, one after the swap settles. Gates:
//   - exactly one swap, model v2, serving the heat-map-correct pair
//     ("simple") at the end of the scripted run (zero flaps), and
//   - post-swap throughput on the drifted segment >= the pinned-pair
//     baseline on that same segment (the re-plan must pay off).
// Results -> BENCH_replan.json.

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "bench_util.h"
#include "common/file_io.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "data/dataset.h"
#include "data/drift.h"
#include "data/specs.h"
#include "serve/protocol.h"

namespace semtag {
namespace {

struct LoadStats {
  uint64_t completed = 0;
  uint64_t shed = 0;
  uint64_t errors = 0;
  double elapsed_s = 0.0;
  std::vector<double> latencies_us;

  double qps() const {
    return elapsed_s > 0 ? static_cast<double>(completed) / elapsed_s : 0.0;
  }
  double percentile(double q) const {
    if (latencies_us.empty()) return 0.0;
    std::vector<double> sorted = latencies_us;
    std::sort(sorted.begin(), sorted.end());
    const size_t rank = static_cast<size_t>(q * (sorted.size() - 1));
    return sorted[rank];
  }
};

int ConnectTo(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  (void)::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    (void)::close(fd);
    return -1;
  }
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool SendAll(int fd, const std::string& bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    return false;
  }
  return true;
}

struct Daemon {
  pid_t pid = -1;
  int port = 0;
  int out_fd = -1;  // daemon stdout (keep open; it logs the drain there)
};

/// fork+exec the daemon, parse "listening on port N" from its stdout.
bool SpawnDaemon(const std::string& binary,
                 const std::vector<std::string>& args, Daemon* out) {
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) return false;
  const pid_t pid = ::fork();
  if (pid < 0) return false;
  if (pid == 0) {
    (void)::close(pipe_fds[0]);
    (void)::dup2(pipe_fds[1], STDOUT_FILENO);
    (void)::close(pipe_fds[1]);
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(binary.c_str()));
    for (const std::string& a : args) {
      argv.push_back(const_cast<char*>(a.c_str()));
    }
    argv.push_back(nullptr);
    ::execv(binary.c_str(), argv.data());
    std::fprintf(stderr, "execv(%s) failed: %s\n", binary.c_str(),
                 std::strerror(errno));
    ::_exit(127);
  }
  (void)::close(pipe_fds[1]);
  // Model training gates the listen line; allow minutes on a cold cache.
  std::string buffered;
  WallTimer timer;
  while (timer.ElapsedSeconds() < 300.0) {
    struct pollfd pfd;
    pfd.fd = pipe_fds[0];
    pfd.events = POLLIN;
    pfd.revents = 0;
    if (::poll(&pfd, 1, 500) <= 0) {
      int status = 0;
      if (::waitpid(pid, &status, WNOHANG) == pid) {
        std::fprintf(stderr, "daemon exited before listening\n");
        (void)::close(pipe_fds[0]);
        return false;
      }
      continue;
    }
    char buf[512];
    const ssize_t n = ::read(pipe_fds[0], buf, sizeof(buf));
    if (n <= 0) break;
    buffered.append(buf, static_cast<size_t>(n));
    int port = 0;
    const size_t pos = buffered.find("listening on port ");
    if (pos != std::string::npos &&
        std::sscanf(buffered.c_str() + pos, "listening on port %d",
                    &port) == 1 &&
        port > 0) {
      out->pid = pid;
      out->port = port;
      out->out_fd = pipe_fds[0];
      return true;
    }
  }
  std::fprintf(stderr, "daemon never printed its port\n");
  (void)::kill(pid, SIGKILL);
  (void)::waitpid(pid, nullptr, 0);
  (void)::close(pipe_fds[0]);
  return false;
}

/// SIGTERM the daemon and reap it. Returns its exit code (-1 on signal
/// death or wait failure).
int StopDaemon(Daemon* daemon) {
  if (daemon->pid <= 0) return -1;
  (void)::kill(daemon->pid, SIGTERM);
  int status = 0;
  const pid_t got = ::waitpid(daemon->pid, &status, 0);
  if (daemon->out_fd >= 0) {
    (void)::close(daemon->out_fd);
    daemon->out_fd = -1;
  }
  daemon->pid = -1;
  if (got <= 0 || !WIFEXITED(status)) return -1;
  return WEXITSTATUS(status);
}

/// Closed loop: keep `window` requests in flight over one pipelined
/// connection for `seconds`, then drain. Latency is send-to-response per
/// ticket; QPS counts every completed response over the full wall time.
bool RunClosedLoop(int port, const std::vector<std::string>& pool,
                   int window, double seconds, LoadStats* stats) {
  const int fd = ConnectTo(port);
  if (fd < 0) return false;
  serve::FrameReader reader;
  std::unordered_map<uint64_t, double> inflight;
  uint64_t next_ticket = 1;
  WallTimer timer;

  const auto send_one = [&]() {
    const uint64_t ticket = next_ticket++;
    std::string frame;
    serve::AppendFrame(
        static_cast<uint8_t>(serve::Opcode::kScore),
        serve::ScorePayload(ticket,
                            pool[ticket % pool.size()]),
        &frame);
    inflight[ticket] = timer.ElapsedSeconds();
    return SendAll(fd, frame);
  };
  // One response handled; returns false on a protocol error.
  const auto handle = [&](uint8_t tag, const std::string& payload) {
    const double now_s = timer.ElapsedSeconds();
    uint64_t ticket = 0;
    uint64_t version = 0;
    double score = 0.0;
    if (tag == static_cast<uint8_t>(serve::StatusCode::kOk)) {
      if (!serve::ParseScoreResponse(payload, &ticket, &version, &score)) {
        return false;
      }
    } else if (tag == static_cast<uint8_t>(serve::StatusCode::kShed)) {
      int64_t t = 0;
      if (!ParseInt64(payload, &t)) return false;
      ticket = static_cast<uint64_t>(t);
      ++stats->shed;
    } else {
      return false;
    }
    const auto it = inflight.find(ticket);
    if (it == inflight.end()) return false;  // unknown ticket
    stats->latencies_us.push_back((now_s - it->second) * 1e6);
    inflight.erase(it);
    ++stats->completed;
    return true;
  };

  bool ok = true;
  for (int i = 0; ok && i < window; ++i) ok = send_one();
  char buf[16384];
  // Fill phase: replace every completion until the clock runs out…
  while (ok && timer.ElapsedSeconds() < seconds) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      ok = false;
      break;
    }
    if (!reader.Feed(buf, static_cast<size_t>(n))) {
      ok = false;
      break;
    }
    uint8_t tag = 0;
    std::string payload;
    while (ok && reader.Next(&tag, &payload)) {
      ok = handle(tag, payload);
      if (ok) ok = send_one();
    }
  }
  // …then drain what is still in flight without replacing it.
  while (ok && !inflight.empty()) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      ok = false;
      break;
    }
    if (!reader.Feed(buf, static_cast<size_t>(n))) {
      ok = false;
      break;
    }
    uint8_t tag = 0;
    std::string payload;
    while (ok && reader.Next(&tag, &payload)) ok = handle(tag, payload);
  }
  stats->elapsed_s = timer.ElapsedSeconds();
  if (!ok) ++stats->errors;
  (void)::close(fd);
  return ok;
}

/// Open loop: submit at a fixed arrival rate regardless of completions
/// (the arrival process the daemon's admission control exists for).
bool RunOpenLoop(int port, const std::vector<std::string>& pool,
                 double rate_qps, double seconds, LoadStats* stats) {
  const int fd = ConnectTo(port);
  if (fd < 0 || rate_qps <= 0) return false;
  serve::FrameReader reader;
  std::unordered_map<uint64_t, double> inflight;
  uint64_t next_ticket = 1;
  const uint64_t total = static_cast<uint64_t>(rate_qps * seconds);
  const double interval_s = 1.0 / rate_qps;
  WallTimer timer;

  const auto handle = [&](uint8_t tag, const std::string& payload) {
    const double now_s = timer.ElapsedSeconds();
    uint64_t ticket = 0;
    uint64_t version = 0;
    double score = 0.0;
    if (tag == static_cast<uint8_t>(serve::StatusCode::kOk)) {
      if (!serve::ParseScoreResponse(payload, &ticket, &version, &score)) {
        return false;
      }
    } else if (tag == static_cast<uint8_t>(serve::StatusCode::kShed)) {
      int64_t t = 0;
      if (!ParseInt64(payload, &t)) return false;
      ticket = static_cast<uint64_t>(t);
      ++stats->shed;
    } else {
      return false;
    }
    const auto it = inflight.find(ticket);
    if (it == inflight.end()) return false;
    stats->latencies_us.push_back((now_s - it->second) * 1e6);
    inflight.erase(it);
    ++stats->completed;
    return true;
  };

  bool ok = true;
  uint64_t sent = 0;
  char buf[16384];
  // Hard stop well past the nominal duration so an overloaded daemon
  // cannot wedge the bench.
  const double hard_stop_s = seconds * 3 + 5.0;
  while (ok && (sent < total || !inflight.empty())) {
    if (timer.ElapsedSeconds() > hard_stop_s) break;
    const double now_s = timer.ElapsedSeconds();
    std::string batch;
    while (sent < total &&
           static_cast<double>(sent) * interval_s <= now_s) {
      const uint64_t ticket = next_ticket++;
      serve::AppendFrame(
          static_cast<uint8_t>(serve::Opcode::kScore),
          serve::ScorePayload(ticket, pool[ticket % pool.size()]),
          &batch);
      inflight[ticket] = timer.ElapsedSeconds();
      ++sent;
    }
    if (!batch.empty() && !SendAll(fd, batch)) {
      ok = false;
      break;
    }
    const double next_due_s =
        sent < total ? static_cast<double>(sent) * interval_s : now_s + 0.05;
    const int wait_ms = std::max(
        0, static_cast<int>((next_due_s - timer.ElapsedSeconds()) * 1e3));
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    if (::poll(&pfd, 1, std::min(wait_ms, 50)) > 0 &&
        (pfd.revents & POLLIN) != 0) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n <= 0) {
        ok = false;
        break;
      }
      if (!reader.Feed(buf, static_cast<size_t>(n))) {
        ok = false;
        break;
      }
      uint8_t tag = 0;
      std::string payload;
      while (ok && reader.Next(&tag, &payload)) ok = handle(tag, payload);
    }
  }
  stats->elapsed_s = timer.ElapsedSeconds();
  if (!ok) ++stats->errors;
  (void)::close(fd);
  return ok;
}

/// Texts the daemon's HETER model was built over — realistic lengths.
std::vector<std::string> RequestPool() {
  data::DatasetSpec spec = data::FindSpec("HETER").ValueOrDie();
  spec.scaled_records = 300;
  return data::BuildDataset(spec).Texts();
}

struct Config {
  std::string label;
  std::string model;    // --model value
  std::string cascade;  // --cascade value ("" = none)
  int batch_cap = 32;
  LoadStats stats;
};

std::vector<std::string> DaemonArgs(const Config& config) {
  std::vector<std::string> args = {
      "--dataset",     "HETER",
      "--records",     "300",
      "--seed",        "1",
      "--model",       config.model,
      "--port",        "0",
      "--batch-cap",   StrFormat("%d", config.batch_cap),
      "--deadline-us", "2000",
      "--queue-cap",   "4096",
  };
  if (!config.cascade.empty()) {
    args.push_back("--cascade");
    args.push_back(config.cascade);
    args.push_back("--budget");
    args.push_back("1.0");
  }
  return args;
}

int SmokeMain(const std::string& binary, int existing_port) {
  const std::vector<std::string> pool = RequestPool();
  Daemon daemon;
  int port = existing_port;
  if (port <= 0) {
    // Tiny cascade (SVM front, CNN escalation): trains in seconds.
    const std::vector<std::string> args = {
        "--dataset", "HETER",    "--records", "220",   "--seed",
        "1",         "--model",  "CASCADE",   "--cascade", "SVM+CNN",
        "--budget",  "2.0",      "--port",    "0",
    };
    if (!SpawnDaemon(binary, args, &daemon)) return 1;
    port = daemon.port;
  }
  LoadStats stats;
  const bool loop_ok = RunClosedLoop(port, pool, 8, 0.5, &stats);
  int exit_code = 0;
  if (daemon.pid > 0) exit_code = StopDaemon(&daemon);
  std::printf("smoke: %llu completed, %llu shed, %llu errors, "
              "qps %.0f, p99 %.0fus, daemon exit %d\n",
              static_cast<unsigned long long>(stats.completed),
              static_cast<unsigned long long>(stats.shed),
              static_cast<unsigned long long>(stats.errors),
              stats.qps(), stats.percentile(0.99), exit_code);
  const bool pass =
      loop_ok && stats.completed > 0 && stats.errors == 0 && exit_code == 0;
  std::printf("smoke gate: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

std::string ConfigJson(const Config& config) {
  const LoadStats& s = config.stats;
  return StrFormat(
      "    {\"label\": \"%s\", \"model\": \"%s\", \"cascade\": \"%s\", "
      "\"batch_cap\": %d, \"completed\": %llu, \"shed\": %llu, "
      "\"qps\": %.1f, \"p50_us\": %.1f, \"p99_us\": %.1f}",
      config.label.c_str(), config.model.c_str(), config.cascade.c_str(),
      config.batch_cap, static_cast<unsigned long long>(s.completed),
      static_cast<unsigned long long>(s.shed), s.qps(), s.percentile(0.5),
      s.percentile(0.99));
}

int BenchMain(const std::string& binary, const std::string& out,
              double seconds, int window) {
  const std::vector<std::string> pool = RequestPool();
  std::vector<Config> configs;
  for (const int cap : {1, 8, 32}) {
    configs.push_back(
        {StrFormat("deep-cap%d", cap), "LSTM", "", cap, {}});
  }
  for (const int cap : {1, 8, 32}) {
    configs.push_back(
        {StrFormat("cascade-cap%d", cap), "CASCADE", "SVM+LSTM", cap, {}});
  }

  for (Config& config : configs) {
    Daemon daemon;
    if (!SpawnDaemon(binary, DaemonArgs(config), &daemon)) return 1;
    // Warmup outside the measured window (connection setup, cold caches).
    LoadStats warmup;
    (void)RunClosedLoop(daemon.port, pool, window, 0.2, &warmup);
    if (!RunClosedLoop(daemon.port, pool, window, seconds,
                       &config.stats)) {
      std::fprintf(stderr, "%s: load loop failed\n", config.label.c_str());
      (void)StopDaemon(&daemon);
      return 1;
    }
    const int exit_code = StopDaemon(&daemon);
    if (exit_code != 0) {
      std::fprintf(stderr, "%s: daemon exit %d\n", config.label.c_str(),
                   exit_code);
      return 1;
    }
    std::printf("%-14s qps %8.1f   p50 %8.0fus   p99 %8.0fus   "
                "(%llu done, %llu shed)\n",
                config.label.c_str(), config.stats.qps(),
                config.stats.percentile(0.5), config.stats.percentile(0.99),
                static_cast<unsigned long long>(config.stats.completed),
                static_cast<unsigned long long>(config.stats.shed));
  }

  // Open loop against the headline config (cascade, cap 32) at ~60% of its
  // closed-loop capacity: latency with headroom, no gate attached.
  const Config& headline = configs[5];
  Config open_config = {"cascade-open", "CASCADE", "SVM+LSTM", 32, {}};
  const double open_rate = 0.6 * headline.stats.qps();
  {
    Daemon daemon;
    if (!SpawnDaemon(binary, DaemonArgs(open_config), &daemon)) return 1;
    (void)RunOpenLoop(daemon.port, pool, open_rate, seconds,
                      &open_config.stats);
    (void)StopDaemon(&daemon);
    std::printf("%-14s qps %8.1f   p50 %8.0fus   p99 %8.0fus   "
                "(rate %.0f/s)\n",
                open_config.label.c_str(), open_config.stats.qps(),
                open_config.stats.percentile(0.5),
                open_config.stats.percentile(0.99), open_rate);
  }

  const LoadStats& deep1 = configs[0].stats;
  const LoadStats& deep32 = configs[2].stats;
  const LoadStats& cascade32 = headline.stats;
  const double cap_ratio = deep1.qps() > 0 ? deep32.qps() / deep1.qps() : 0;
  const bool p99_ok = deep32.percentile(0.99) <= deep1.percentile(0.99);
  const double cascade_ratio =
      deep32.qps() > 0 ? cascade32.qps() / deep32.qps() : 0;
  const bool pass = cap_ratio >= 2.0 && p99_ok && cascade_ratio > 1.0;
  std::printf("gates: cap32/cap1 qps %.2fx (>= 2x), cap32 p99 %s cap1, "
              "cascade/deep qps %.2fx (> 1x) -> %s\n",
              cap_ratio, p99_ok ? "<=" : ">", cascade_ratio,
              pass ? "PASS" : "FAIL");

  std::string json = "{\n  \"name\": \"semtag-serve-bench-v1\",\n";
  json += bench::JsonContextFields() + "\n";
  json += StrFormat("  \"window\": %d,\n  \"seconds\": %.1f,\n", window,
                    seconds);
  json += "  \"configs\": [\n";
  for (size_t i = 0; i < configs.size(); ++i) {
    json += ConfigJson(configs[i]);
    json += i + 1 < configs.size() ? ",\n" : "\n";
  }
  json += "  ],\n";
  json += StrFormat("  \"open_loop\": {\"rate_qps\": %.1f,\n%s\n  },\n",
                    open_rate, ConfigJson(open_config).c_str());
  json += StrFormat(
      "  \"gates\": {\"cap32_vs_cap1_qps\": %.3f, "
      "\"cap32_p99_le_cap1\": %s, \"cascade_vs_deep_qps\": %.3f, "
      "\"pass\": %s}\n}\n",
      cap_ratio, p99_ok ? "true" : "false", cascade_ratio,
      pass ? "true" : "false");
  const Status st = WriteFileAtomic(out, json);
  if (!st.ok()) {
    std::fprintf(stderr, "cannot write %s: %s\n", out.c_str(),
                 st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", out.c_str());
  return pass ? 0 : 1;
}

// ---------------------------------------------------------------------------
// --drift: the online re-planning loop end to end
// ---------------------------------------------------------------------------

/// Sends every text as a pipelined kScore and waits for all responses
/// (shed replies count as answered — the queue cap is sized so none
/// occur). One connection per call.
bool DriveRecords(int port, const std::vector<std::string>& texts) {
  const int fd = ConnectTo(port);
  if (fd < 0) return false;
  std::string frames;
  for (size_t i = 0; i < texts.size(); ++i) {
    serve::AppendFrame(static_cast<uint8_t>(serve::Opcode::kScore),
                       serve::ScorePayload(i + 1, texts[i]), &frames);
  }
  bool ok = SendAll(fd, frames);
  serve::FrameReader reader;
  size_t got = 0;
  char buf[16384];
  WallTimer timer;
  while (ok && got < texts.size() && timer.ElapsedSeconds() < 60.0) {
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    if (::poll(&pfd, 1, 100) <= 0) continue;
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) {
      ok = false;
      break;
    }
    if (!reader.Feed(buf, static_cast<size_t>(n))) {
      ok = false;
      break;
    }
    uint8_t tag = 0;
    std::string payload;
    while (reader.Next(&tag, &payload)) ++got;
  }
  (void)::close(fd);
  return ok && got == texts.size();
}

/// One kStats round trip.
bool FetchStats(int port, std::string* payload) {
  const int fd = ConnectTo(port);
  if (fd < 0) return false;
  std::string frame;
  serve::AppendFrame(static_cast<uint8_t>(serve::Opcode::kStats), "",
                     &frame);
  bool ok = SendAll(fd, frame);
  serve::FrameReader reader;
  uint8_t tag = 0;
  char buf[16384];
  WallTimer timer;
  bool got = false;
  while (ok && !got && timer.ElapsedSeconds() < 10.0) {
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    if (::poll(&pfd, 1, 100) <= 0) continue;
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    if (!reader.Feed(buf, static_cast<size_t>(n))) break;
    got = reader.Next(&tag, payload);
  }
  (void)::close(fd);
  return got && tag == static_cast<uint8_t>(serve::StatusCode::kOk);
}

/// Parses `"key": <int>` out of a one-line JSON stats payload.
int64_t JsonCount(const std::string& payload, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const size_t pos = payload.find(needle);
  if (pos == std::string::npos) return -1;
  int64_t value = 0;
  if (std::sscanf(payload.c_str() + pos + needle.size(), "%lld",
                  reinterpret_cast<long long*>(&value)) != 1) {
    return -1;
  }
  return value;
}

/// Parses `"key": "<value>"` out of a one-line JSON stats payload.
std::string JsonString(const std::string& payload, const std::string& key) {
  const std::string needle = "\"" + key + "\": \"";
  const size_t pos = payload.find(needle);
  if (pos == std::string::npos) return "";
  const size_t begin = pos + needle.size();
  const size_t end = payload.find('"', begin);
  if (end == std::string::npos) return "";
  return payload.substr(begin, end - begin);
}

// One drift epoch: measurements, the detector window, and the scenario's
// segments all use the same record count so every measured drive is
// exactly one sealed epoch and the scripted boundary lands on an epoch
// boundary.
constexpr int kDriftEpoch = 8192;

int DriftMain(const std::string& binary, const std::string& out) {
  // Clean->dirty schedule over the SUGG generator: segment 0 re-draws the
  // training distribution, segment 1 is the drifted regime (open-vocab
  // entity soup + rotated topics + ratio shift). SUGG at 2000 records is
  // the corpus where the calibrated cascade keeps a live deep tier
  // (threshold ~0.09, ~8% escalated on clean holdout), so drift that
  // shrinks SVM margins has a real serving cost for the pinned pair.
  data::DriftScenario scenario;
  scenario.base_dataset = "SUGG";
  scenario.seed = 7;
  data::DriftSegment clean;
  clean.label = "clean";
  clean.records = kDriftEpoch;
  clean.positive_ratio = 0.262;  // SUGG's observed training ratio
  scenario.segments.push_back(clean);
  data::DriftSegment dirty;
  dirty.label = "dirty";
  dirty.records = kDriftEpoch;
  dirty.positive_ratio = 0.35;
  // Entity soup saturates the OOV/churn proxy (the detector's signal);
  // symmetric label contamination keeps the signal lexicon in-vocab but
  // mixes it across labels, which is what shrinks SVM margins and drives
  // escalation (~12% of this segment vs ~8% clean). A vocab_shift would
  // instead rotate the signal words out of the learned vocabulary and
  // produce confident negatives that never escalate.
  dirty.entity_rate = 0.35;
  dirty.entity_signal = 0.5;
  dirty.entity_pool_size = 4000;
  dirty.neg_contamination = 0.25;
  dirty.pos_contamination = 0.25;
  scenario.segments.push_back(dirty);
  const std::vector<data::DriftRecord> stream =
      data::GenerateDriftStream(scenario);
  std::vector<std::string> clean_pool, dirty_pool;
  for (const data::DriftRecord& r : stream) {
    (r.segment == 0 ? clean_pool : dirty_pool).push_back(r.text);
  }

  const std::vector<std::string> base_args = {
      "--dataset",     "SUGG",    "--records",   "2000",
      "--seed",        "1",       "--model",     "CASCADE",
      "--cascade",     "SVM+CNN", "--budget",    "0.5",
      "--port",        "0",       "--batch-cap", "32",
      "--deadline-us", "2000",    "--queue-cap", "16384",
  };

  // One daemon for the whole scripted run, detector armed via env
  // (inherited across fork/exec, cleared immediately after the spawn).
  // Geometry: kDriftEpoch-record epochs, 2-epoch window, dwell 2 — the
  // earliest possible firing is the SECOND dirty epoch, so the first
  // dirty epoch is a safe pre-swap measurement window. Dirtiness
  // thresholds measured on this corpus (clean epochs ~0.42 against the
  // SUGG@2000 training reference, drifted window saturates at 1.0).
  Daemon daemon;
  {
    const std::string epoch = StrFormat("%d", kDriftEpoch);
    ::setenv("SEMTAG_REPLAN", "1", 1);
    ::setenv("SEMTAG_REPLAN_EPOCH", epoch.c_str(), 1);
    ::setenv("SEMTAG_REPLAN_WINDOW", "2", 1);
    ::setenv("SEMTAG_REPLAN_HYSTERESIS", "2,0.25", 1);
    ::setenv("SEMTAG_REPLAN_DIRTY", "0.65,0.15", 1);
    ::setenv("SEMTAG_REPLAN_PROFILE", "4750000,0.3", 1);
    ::setenv("SEMTAG_REPLAN_PAIR", "SVM+CNN", 1);
    ::setenv("SEMTAG_REPLAN_BUDGET", "0.5", 1);
    ::setenv("SEMTAG_REPLAN_DIR", "/tmp", 1);
    const bool spawned = SpawnDaemon(binary, base_args, &daemon);
    for (const char* name :
         {"SEMTAG_REPLAN", "SEMTAG_REPLAN_EPOCH", "SEMTAG_REPLAN_WINDOW",
          "SEMTAG_REPLAN_HYSTERESIS", "SEMTAG_REPLAN_DIRTY",
          "SEMTAG_REPLAN_PROFILE", "SEMTAG_REPLAN_PAIR",
          "SEMTAG_REPLAN_BUDGET", "SEMTAG_REPLAN_DIR"}) {
      ::unsetenv(name);
    }
    if (!spawned) return 1;
  }

  // Clean phase: two full epochs of in-distribution traffic. The detector
  // must hold the incumbent through both.
  std::string stats_payload;
  for (int i = 0; i < 2; ++i) {
    if (!DriveRecords(daemon.port, clean_pool)) {
      std::fprintf(stderr, "clean phase failed\n");
      (void)StopDaemon(&daemon);
      return 1;
    }
  }
  if (FetchStats(daemon.port, &stats_payload) &&
      JsonCount(stats_payload, "swaps") != 0) {
    std::fprintf(stderr, "detector fired on clean traffic: %s\n",
                 stats_payload.c_str());
    (void)StopDaemon(&daemon);
    return 1;
  }
  const std::string pinned_pair = JsonString(stats_payload, "pair");

  // Pinned-pair baseline ON THE DRIFTED SEGMENT: the first dirty epoch,
  // timed. Dwell hysteresis guarantees no swap can land inside it, so
  // this is exactly what the deployment keeps paying without a re-plan —
  // drifted low-margin traffic escalating into the deep tier.
  double pinned_qps = 0.0;
  {
    WallTimer timer;
    if (!DriveRecords(daemon.port, dirty_pool)) {
      std::fprintf(stderr, "pinned-pair drift measurement failed\n");
      (void)StopDaemon(&daemon);
      return 1;
    }
    pinned_qps = dirty_pool.size() / timer.ElapsedSeconds();
  }
  if (FetchStats(daemon.port, &stats_payload) &&
      JsonCount(stats_payload, "swaps") != 0) {
    std::fprintf(stderr, "swap landed inside the baseline window: %s\n",
                 stats_payload.c_str());
    (void)StopDaemon(&daemon);
    return 1;
  }
  std::printf("pinned %s on drifted segment: qps %.1f\n",
              pinned_pair.c_str(), pinned_qps);

  // Drifted phase: replay the dirty epoch until the swap lands (the
  // retrain runs off-loop, so poll between epochs with generous wall
  // time).
  int64_t swaps = 0;
  double swap_wait_s = 0.0;
  {
    WallTimer timer;
    while (swaps <= 0 && timer.ElapsedSeconds() < 120.0) {
      if (!DriveRecords(daemon.port, dirty_pool)) {
        std::fprintf(stderr, "drift phase failed\n");
        (void)StopDaemon(&daemon);
        return 1;
      }
      for (int poll = 0; poll < 50 && swaps <= 0; ++poll) {
        if (FetchStats(daemon.port, &stats_payload)) {
          swaps = JsonCount(stats_payload, "swaps");
        }
        if (swaps <= 0) ::usleep(200 * 1000);
      }
    }
    swap_wait_s = timer.ElapsedSeconds();
  }
  std::printf("swap landed after %.1fs of drifted traffic (%s)\n",
              swap_wait_s, stats_payload.c_str());

  // One settling epoch after the swap (also proves the re-planned pair
  // holds its own cell — any flap shows up in the final counters), then
  // the post-swap measurement: the SAME drifted records, timed the same
  // way, against the re-planned pair.
  double post_qps = 0.0;
  bool post_ok = DriveRecords(daemon.port, dirty_pool);
  if (post_ok) {
    WallTimer timer;
    post_ok = DriveRecords(daemon.port, dirty_pool);
    post_qps = dirty_pool.size() / timer.ElapsedSeconds();
  }
  int64_t final_swaps = -1, final_version = -1;
  std::string final_pair;
  if (FetchStats(daemon.port, &stats_payload)) {
    final_swaps = JsonCount(stats_payload, "swaps");
    final_version = JsonCount(stats_payload, "version");
    final_pair = JsonString(stats_payload, "pair");
  }
  const int exit_code = StopDaemon(&daemon);
  if (!post_ok || exit_code != 0) {
    std::fprintf(stderr, "post-swap measurement failed (exit %d)\n",
                 exit_code);
    return 1;
  }
  std::printf("re-planned %s on drifted segment: qps %.1f\n",
              final_pair.c_str(), post_qps);

  // Gates: one scripted crossing -> exactly one swap ending on the dirty
  // cell's heat-map pair, and the swap must buy back throughput on the
  // traffic that triggered it.
  const bool swap_ok =
      final_swaps == 1 && final_version == 2 && final_pair == "simple";
  const bool qps_ok = post_qps >= pinned_qps;
  const bool pass = swap_ok && qps_ok;
  std::printf("gates: swaps %lld (== 1), version %lld (== 2), "
              "pair %s (== simple), post/pinned qps %.2fx (>= 1x) -> %s\n",
              static_cast<long long>(final_swaps),
              static_cast<long long>(final_version), final_pair.c_str(),
              pinned_qps > 0 ? post_qps / pinned_qps : 0.0,
              pass ? "PASS" : "FAIL");

  std::string json = "{\n  \"name\": \"semtag-replan-bench-v1\",\n";
  json += bench::JsonContextFields() + "\n";
  json += StrFormat(
      "  \"dataset\": \"SUGG\", \"records\": 2000, \"budget_pts\": 0.5,\n"
      "  \"epoch_records\": %d,\n  \"swap_wait_s\": %.1f,\n",
      kDriftEpoch, swap_wait_s);
  json += StrFormat(
      "  \"pinned\": {\"pair\": \"%s\", \"qps\": %.1f, \"records\": %zu},\n",
      pinned_pair.c_str(), pinned_qps, dirty_pool.size());
  json += StrFormat(
      "  \"post_swap\": {\"pair\": \"%s\", \"qps\": %.1f, "
      "\"records\": %zu},\n",
      final_pair.c_str(), post_qps, dirty_pool.size());
  json += StrFormat(
      "  \"gates\": {\"swaps\": %lld, \"version\": %lld, "
      "\"final_pair\": \"%s\", \"post_vs_pinned_qps\": %.3f, "
      "\"pass\": %s}\n}\n",
      static_cast<long long>(final_swaps),
      static_cast<long long>(final_version), final_pair.c_str(),
      pinned_qps > 0 ? post_qps / pinned_qps : 0.0,
      pass ? "true" : "false");
  const Status st = WriteFileAtomic(out, json);
  if (!st.ok()) {
    std::fprintf(stderr, "cannot write %s: %s\n", out.c_str(),
                 st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", out.c_str());
  return pass ? 0 : 1;
}

int Main(int argc, char** argv) {
  bench::BenchSetup("Online serving: dynamic batching + cascade tiers",
                    "throughput/latency extension of Table 7 cost columns",
                    argc, argv);
  bool smoke = false;
  bool drift = false;
  std::string binary;
  std::string out;
  double seconds = 2.0;
  int window = 64;
  int port = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--drift") {
      drift = true;
    } else if (arg == "--daemon") {
      binary = next();
    } else if (arg == "--out") {
      out = next();
    } else if (arg == "--seconds") {
      (void)ParseDouble(next(), &seconds);
    } else if (arg == "--window") {
      int64_t v = 0;
      if (ParseInt64(next(), &v) && v > 0) window = static_cast<int>(v);
    } else if (arg == "--port") {
      int64_t v = 0;
      if (ParseInt64(next(), &v)) port = static_cast<int>(v);
    }
  }
  if (out.empty()) out = drift ? "BENCH_replan.json" : "BENCH_serve.json";
  if (smoke) return SmokeMain(binary, port);
  if (binary.empty()) {
    std::fprintf(stderr,
                 "need --daemon <path to semtag_serve> (or --smoke)\n");
    return 2;
  }
  if (drift) return DriftMain(binary, out);
  return BenchMain(binary, out, seconds, window);
}

}  // namespace
}  // namespace semtag

int main(int argc, char** argv) { return semtag::Main(argc, argv); }
