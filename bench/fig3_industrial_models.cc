// Reproduces Figure 3 (and appendix Figures 16/17): the industrial models
// - Naive Bayes and XGBoost vs LR/SVM, and ALBERT/ROBERTA vs BERT -
// averaged over all 21 datasets. The paper's conclusion: LR/SVM are the
// best simple representatives, BERT the best deep representative.

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "core/experiment.h"
#include "eval/metrics.h"

namespace semtag {
namespace {

double AverageF1(core::ExperimentRunner* runner, models::ModelKind kind) {
  std::vector<double> f1s;
  for (const auto& spec : data::AllDatasetSpecs()) {
    f1s.push_back(runner->Run(spec, kind).f1);
  }
  return eval::MacroAverage(f1s);
}

int Main(int argc, char** argv) {
  bench::BenchSetup(
      "Figure 3 / Figures 16-17 - industrial simple and deep models",
      "Li et al., VLDB 2020, Section 5.2.1 'Other industrial models'", argc, argv);
  core::ExperimentRunner runner;

  std::printf("(a) simple models, average F1 over the 21 datasets "
              "(paper: LR/SVM 0.65, NB 0.62, XGBoost 0.61)\n\n");
  bench::Table simple({"Model", "avg F1 (paper)"});
  {
    std::vector<double> best_lr_svm;
    for (const auto& spec : data::AllDatasetSpecs()) {
      best_lr_svm.push_back(
          std::max(runner.Run(spec, models::ModelKind::kLr).f1,
                   runner.Run(spec, models::ModelKind::kSvm).f1));
    }
    simple.AddRow({"LR/SVM (best)",
                   bench::VsPaper(eval::MacroAverage(best_lr_svm), 0.65)});
  }
  simple.AddRow({"NB", bench::VsPaper(AverageF1(&runner,
                                                models::ModelKind::kNaiveBayes),
                                      0.62)});
  simple.AddRow({"XGB", bench::VsPaper(AverageF1(&runner,
                                                 models::ModelKind::kXgboost),
                                       0.61)});
  simple.Print();

  std::printf("(b) attention-based deep models, average F1 "
              "(paper: BERT 0.73, ROBERTA 0.72, ALBERT 0.68)\n\n");
  bench::Table deep({"Model", "avg F1 (paper)"});
  deep.AddRow({"BERT", bench::VsPaper(
                           AverageF1(&runner, models::ModelKind::kBert),
                           0.73)});
  deep.AddRow({"ROBERTA", bench::VsPaper(AverageF1(&runner,
                                                   models::ModelKind::kRoberta),
                                         0.72)});
  deep.AddRow({"ALBERT", bench::VsPaper(AverageF1(&runner,
                                                  models::ModelKind::kAlbert),
                                        0.68)});
  deep.Print();
  return 0;
}

}  // namespace
}  // namespace semtag

int main(int argc, char** argv) { return semtag::Main(argc, argv); }
