// Reproduces Figure 10: F1 of LR, SVM, BERT on the four large datasets,
// resampled to positive ratios 10%..90% (Section 6.2.2's protocol: sample
// a fixed-size set at each ratio, split 80/20). The paper: F1 rises with
// the ratio, steeply below 25%, and the BERT-vs-simple gap narrows as the
// ratio grows.

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "core/experiment.h"
#include "data/sampling.h"
#include "data/specs.h"

namespace semtag {
namespace {

constexpr size_t kSampleSize = 6000;  // the paper uses 100K, scaled down

void RatioSweep(core::ExperimentRunner* runner,
                const data::DatasetSpec& spec) {
  std::printf("Figure 10 (%s): F1 vs positive-label ratio\n\n",
              spec.name.c_str());
  // Pool with enough positives that even the 90% ratio samples without
  // replacement (duplicated records would leak across the train/test
  // split and inflate F1).
  const int pool_size = static_cast<int>(
      std::max<double>(kSampleSize * 2,
                       kSampleSize * 0.92 / spec.paper_positive));
  data::Dataset pool = data::BuildDatasetPool(spec, pool_size);
  Rng rng(spec.generator.seed ^ 0xa10);

  bench::Table table({"ratio", "LR", "SVM", "BERT", "BERT-LR gap"});
  for (double ratio : {0.1, 0.2, 0.3, 0.5, 0.7, 0.9}) {
    data::Dataset sampled =
        data::SampleWithRatio(pool, kSampleSize, ratio, &rng);
    auto [train, test] = sampled.Split(0.8);
    std::vector<std::string> row = {bench::Fmt(ratio, 1)};
    double lr_f1 = 0.0, bert_f1 = 0.0;
    for (auto kind : {models::ModelKind::kLr, models::ModelKind::kSvm,
                      models::ModelKind::kBert}) {
      const auto result = runner->RunOn(
          StrFormat("fig10v2|%s|%s|r%.2f", spec.name.c_str(),
                    core::SpecConfigDigest(spec).c_str(), ratio),
          train, test, kind);
      row.push_back(bench::Fmt(result.f1));
      if (kind == models::ModelKind::kLr) lr_f1 = result.f1;
      if (kind == models::ModelKind::kBert) bert_f1 = result.f1;
    }
    row.push_back(StrFormat("%+.2f", bert_f1 - lr_f1));
    table.AddRow(std::move(row));
  }
  table.Print();
}

int Main(int argc, char** argv) {
  bench::BenchSetup("Figure 10 - effect of the positive-label ratio",
                    "Li et al., VLDB 2020, Section 6.2.2, Figure 10", argc, argv);
  core::ExperimentRunner runner;
  for (const char* name : {"AMAZON", "YELP", "FUNNY", "BOOK"}) {
    RatioSweep(&runner, *data::FindSpec(name));
  }
  std::printf(
      "Expected shape: F1 rises with the ratio on all four datasets, with "
      "the largest improvements below 25%%; gains are stronger on the "
      "dirty datasets (FUNNY/BOOK); the BERT-simple gap narrows as the "
      "ratio grows.\n");
  return 0;
}

}  // namespace
}  // namespace semtag

int main(int argc, char** argv) { return semtag::Main(argc, argv); }
