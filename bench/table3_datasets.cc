// Reproduces Table 3 (statistics of the 21 datasets) and Table 4 (the
// dataset taxonomy). Statistics are computed from the generated synthetic
// stand-ins and printed next to the paper's values for the real datasets.

#include <cstdio>
#include <map>

#include "bench_util.h"
#include "common/string_util.h"
#include "core/taxonomy.h"
#include "data/specs.h"

namespace semtag {
namespace {

int Main(int argc, char** argv) {
  bench::BenchSetup("Table 3 / Table 4 - dataset statistics and taxonomy",
                    "Li et al., VLDB 2020, Section 4, Tables 3-4", argc, argv);

  bench::Table table({"Dataset", "Application", "#Record (paper)",
                      "%Positive (paper)", "Vocab (paper)", "Quality"});
  for (const auto& spec : data::AllDatasetSpecs()) {
    const data::Dataset dataset = data::BuildDataset(spec);
    const data::DatasetStats stats = dataset.ComputeStats();
    table.AddRow(
        {spec.name, spec.application,
         StrFormat("%s (%s)", WithCommas(stats.num_records).c_str(),
                   WithCommas(spec.paper_records).c_str()),
         StrFormat("%.1f%% (%.1f%%)", 100 * stats.positive_ratio,
                   100 * spec.paper_positive),
         StrFormat("%s (%s)", WithCommas(stats.vocab_size).c_str(),
                   WithCommas(spec.paper_vocab).c_str()),
         spec.dirty ? "dirty" : "clean"});
  }
  table.Print();

  std::printf("Table 4 - dataset taxonomy (by the paper's thresholds: "
              "large >= 100K records, high >= 25%% positive)\n\n");
  bench::Table taxonomy({"Category", "Datasets"});
  for (auto category : core::kCategoriesInTableOrder) {
    std::string names;
    for (const auto& spec : bench::SpecsInCategory(category)) {
      if (!names.empty()) names += ", ";
      names += spec.name;
    }
    taxonomy.AddRow({core::CategoryName(category), names});
  }
  taxonomy.Print();
  return 0;
}

}  // namespace
}  // namespace semtag

int main(int argc, char** argv) { return semtag::Main(argc, argv); }
