#ifndef SEMTAG_BENCH_BENCH_UTIL_H_
#define SEMTAG_BENCH_BENCH_UTIL_H_

#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/taxonomy.h"

namespace semtag::bench {

/// Build type of this binary: "release" when compiled with NDEBUG, "debug"
/// otherwise. Distinct from google-benchmark's own library_build_type
/// context field, which describes only the benchmark library. Benchmark
/// mains record it via benchmark::AddCustomContext so every BENCH_*.json
/// carries the build type of the numbers it holds.
const char* LibraryBuildType();

/// Hardware threads on this host. Every emitted BENCH_*.json stamps it
/// (benchmark mains via AddCustomContext, hand-rolled emitters via
/// JsonContextFields) so recorded numbers are interpretable relative to
/// the machine that produced them.
int HostCores();

/// The standard context fields every hand-rolled BENCH_*.json carries:
///   "build": "<release|debug>",\n  "host_cores": <n>,
/// (two indented lines, trailing comma, no surrounding braces).
std::string JsonContextFields();

/// Standard bench preamble: quiets INFO logging (keeps tables clean),
/// prints the header naming the experiment being reproduced, and warns
/// loudly when the binary is a debug build (timings meaningless).
void BenchSetup(const std::string& title, const std::string& paper_ref);

/// Preamble plus flag handling: consumes --metrics[=path] / --trace[=path]
/// (arming the observability layer exactly like SEMTAG_METRICS /
/// SEMTAG_TRACE; artifacts flush at exit). Unknown flags are ignored.
void BenchSetup(const std::string& title, const std::string& paper_ref,
                int argc, char** argv);

/// Fixed-width table printer. Add a header row then data rows; Print emits
/// an aligned plain-text table to stdout.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);
  void Print() const;

 private:
  std::vector<std::vector<std::string>> rows_;
};

/// "0.83" style fixed formatting for metric cells.
std::string Fmt(double value, int decimals = 2);

/// "measured (paper X)" cell used throughout EXPERIMENTS.md-facing output.
std::string VsPaper(double measured, double paper);

/// Specs grouped per category in Table 5 row order.
std::vector<data::DatasetSpec> SpecsInCategory(
    core::DatasetCategory category);

/// Specs partitioned by ratio as Figures 1/2 do: high (>= 25%) first.
std::vector<data::DatasetSpec> HighRatioSpecs();
std::vector<data::DatasetSpec> LowRatioSpecs();

}  // namespace semtag::bench

#endif  // SEMTAG_BENCH_BENCH_UTIL_H_
