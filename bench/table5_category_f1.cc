// Reproduces Table 5 (macro-/micro-average F1 of LR, SVM, CNN, LSTM, BERT
// per dataset category) and Table 9 (the micro-only appendix view), plus
// the overall micro-average comparison of the appendix.

#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "core/experiment.h"
#include "eval/metrics.h"

namespace semtag {
namespace {

// The paper's Table 5 values, [category][model], macro then micro.
struct PaperCell {
  double macro;
  double micro;
};
const PaperCell kPaperTable5[4][5] = {
    // LR, SVM, CNN, LSTM, BERT
    {{0.85, 0.77}, {0.85, 0.76}, {0.80, 0.72}, {0.80, 0.72}, {0.87, 0.79}},
    {{0.77, 0.73}, {0.76, 0.72}, {0.75, 0.70}, {0.75, 0.71}, {0.85, 0.82}},
    {{0.52, 0.51}, {0.52, 0.51}, {0.49, 0.47}, {0.51, 0.49}, {0.68, 0.66}},
    {{0.23, 0.20}, {0.27, 0.20}, {0.07, 0.06}, {0.12, 0.11}, {0.24, 0.19}},
};

int Main(int argc, char** argv) {
  bench::BenchSetup(
      "Table 5 / Table 9 - category-average F1 of the five models",
      "Li et al., VLDB 2020, Section 5.2, Tables 5 and 9", argc, argv);
  core::ExperimentRunner runner;

  bench::Table table({"Category", "LR", "SVM", "CNN", "LSTM", "BERT"});
  for (int c = 0; c < 4; ++c) {
    const auto category = core::kCategoriesInTableOrder[c];
    const auto specs = bench::SpecsInCategory(category);
    std::vector<std::string> row = {core::CategoryName(category)};
    int m = 0;
    for (auto kind : models::RepresentativeModels()) {
      std::vector<double> f1s;
      std::vector<int64_t> weights;
      for (const auto& spec : specs) {
        f1s.push_back(runner.Run(spec, kind).f1);
        weights.push_back(spec.paper_records);
      }
      row.push_back(StrFormat(
          "%.2f/%.2f (paper %.2f/%.2f)", eval::MacroAverage(f1s),
          eval::MicroAverage(f1s, weights), kPaperTable5[c][m].macro,
          kPaperTable5[c][m].micro));
      ++m;
    }
    table.AddRow(std::move(row));
  }
  table.Print();

  std::printf("Overall micro-average F1 across all 21 datasets (appendix: "
              "LR 0.33, SVM 0.34, CNN 0.22, LSTM 0.25, BERT 0.33 - large "
              "datasets dominate the weights):\n\n");
  bench::Table overall({"Model", "micro-F1 (paper)"});
  const double paper_micro[5] = {0.33, 0.34, 0.22, 0.25, 0.33};
  int m = 0;
  for (auto kind : models::RepresentativeModels()) {
    std::vector<double> f1s;
    std::vector<int64_t> weights;
    for (const auto& spec : data::AllDatasetSpecs()) {
      f1s.push_back(runner.Run(spec, kind).f1);
      weights.push_back(spec.paper_records);
    }
    overall.AddRow({models::ModelKindName(kind),
                    bench::VsPaper(eval::MicroAverage(f1s, weights),
                                   paper_micro[m])});
    ++m;
  }
  overall.Print();
  return 0;
}

}  // namespace
}  // namespace semtag

int main(int argc, char** argv) { return semtag::Main(argc, argv); }
