// Reproduces Figure 11: the heat map of BERT and SVM F1 over all 21
// datasets together with each dataset's size / ratio / cleanliness — the
// study's model-selection reference card.

#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "core/advisor.h"

namespace semtag {
namespace {

int Main(int argc, char** argv) {
  bench::BenchSetup("Figure 11 - heat map of BERT and SVM F1",
                    "Li et al., VLDB 2020, Section 6.3 / Figure 11", argc, argv);
  core::ExperimentRunner runner;
  const auto rows = core::BuildHeatMap(&runner);

  bench::Table table({"Dataset", "Size", "Ratio", "Quality",
                      "BERT F1 (paper)", "SVM F1 (paper)"});
  for (const auto& row : rows) {
    const auto spec = *data::FindSpec(row.dataset);
    table.AddRow({row.dataset, WithCommas(row.paper_records),
                  bench::Fmt(row.ratio), row.clean ? "clean" : "dirty",
                  bench::VsPaper(row.bert_f1, spec.paper_f1_bert),
                  bench::VsPaper(row.svm_f1, spec.paper_f1_svm)});
  }
  table.Print();

  std::printf("Colored heat map (blue = low F1, red = high, midpoint %.2f "
              "as in the paper):\n\n",
              0.53);
  std::printf("%s\n", core::RenderHeatMap(rows, /*color=*/true).c_str());
  return 0;
}

}  // namespace
}  // namespace semtag

int main(int argc, char** argv) { return semtag::Main(argc, argv); }
