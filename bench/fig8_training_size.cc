// Reproduces Figure 8 (F1 of LR, SVM, BERT vs training-set size on the
// four large datasets) and Figure 9 (vocabulary growth with training size).
// The paper's finding: more data helps simple models more, narrowing the
// deep/simple gap; vocabulary growth explains why.

#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "core/characteristics.h"
#include "core/experiment.h"
#include "data/specs.h"

namespace semtag {
namespace {

// Scaled stand-ins for the paper's size grid (they sweep 2K..large with a
// fixed test set; we sweep proportionally on the generated pools).
const int64_t kTrainSizes[] = {250, 500, 1000, 2000, 4000, 8000};
constexpr int kTestSize = 4000;

void SizeSweep(core::ExperimentRunner* runner,
               const data::DatasetSpec& spec) {
  std::printf("Figure 8 (%s): F1 vs training-set size\n\n",
              spec.name.c_str());
  // One big pool; fixed test set from its tail (the paper fixes 100K).
  const int pool_size = 8000 + kTestSize;
  data::Dataset pool = data::BuildDatasetPool(spec, pool_size);
  data::Dataset train_pool(pool.name() + "/train");
  data::Dataset test(pool.name() + "/test");
  // Split: first 8000 for training prefixes, rest for the fixed test set.
  for (size_t i = 0; i < pool.size(); ++i) {
    (i < 8000 ? train_pool : test).Add(pool[i]);
  }

  bench::Table table({"train size", "LR", "SVM", "BERT", "BERT-LR gap"});
  for (int64_t size : kTrainSizes) {
    const data::Dataset train = train_pool.Take(static_cast<size_t>(size));
    if (train.PositiveCount() == 0) continue;
    std::vector<std::string> row = {WithCommas(size)};
    double lr_f1 = 0.0, bert_f1 = 0.0;
    for (auto kind : {models::ModelKind::kLr, models::ModelKind::kSvm,
                      models::ModelKind::kBert}) {
      const auto result = runner->RunOn(
          StrFormat("fig8|%s|%s|n%lld", spec.name.c_str(),
                    core::SpecConfigDigest(spec).c_str(),
                    static_cast<long long>(size)),
          train, test, kind);
      row.push_back(bench::Fmt(result.f1));
      if (kind == models::ModelKind::kLr) lr_f1 = result.f1;
      if (kind == models::ModelKind::kBert) bert_f1 = result.f1;
    }
    row.push_back(StrFormat("%+.2f", bert_f1 - lr_f1));
    table.AddRow(std::move(row));
  }
  table.Print();
}

void VocabGrowth(const data::DatasetSpec& spec) {
  const data::Dataset pool = data::BuildDatasetPool(spec, 8000);
  std::vector<int64_t> sizes(kTrainSizes,
                             kTrainSizes + sizeof(kTrainSizes) /
                                               sizeof(kTrainSizes[0]));
  const auto points = core::VocabularyGrowth(pool, sizes);
  std::printf("Figure 9 (%s): distinct words vs records consumed\n  ",
              spec.name.c_str());
  for (const auto& p : points) {
    std::printf("%lld:%lld  ", static_cast<long long>(p.records),
                static_cast<long long>(p.distinct_words));
  }
  std::printf("\n\n");
}

int Main(int argc, char** argv) {
  bench::BenchSetup(
      "Figure 8 / Figure 9 - effect of training-set size",
      "Li et al., VLDB 2020, Section 6.2.1, Figures 8 and 9", argc, argv);
  core::ExperimentRunner runner;
  for (const char* name : {"AMAZON", "YELP", "FUNNY", "BOOK"}) {
    const auto spec = *data::FindSpec(name);
    SizeSweep(&runner, spec);
    VocabGrowth(spec);
  }
  std::printf(
      "Expected shape: every model improves with size; LR/SVM improve more "
      "(the BERT-LR gap shrinks as size grows); the vocabulary keeps "
      "growing, exposing more words to the models.\n");
  return 0;
}

}  // namespace
}  // namespace semtag

int main(int argc, char** argv) { return semtag::Main(argc, argv); }
