// Reproduces Figures 1 and 2: per-dataset F1 of the five representative
// models (LR, SVM, CNN, LSTM, BERT), split into the high-ratio datasets
// (Figure 1) and the low-ratio/imbalanced datasets (Figure 2).

#include <cstdio>

#include "bench_util.h"
#include "core/experiment.h"

namespace semtag {
namespace {

void PrintGroup(core::ExperimentRunner* runner, const char* title,
                const std::vector<data::DatasetSpec>& specs) {
  std::printf("%s\n\n", title);
  bench::Table table({"Dataset", "LR", "SVM", "CNN", "LSTM", "BERT",
                      "best (paper best model)"});
  for (const auto& spec : specs) {
    std::vector<std::string> row = {spec.name};
    double best = 0.0;
    std::string best_model;
    for (auto kind : models::RepresentativeModels()) {
      const auto result = runner->Run(spec, kind);
      row.push_back(bench::Fmt(result.f1));
      if (result.f1 > best) {
        best = result.f1;
        best_model = result.model;
      }
    }
    row.push_back(best_model + " (paper: BERT on 19 of 21)");
    table.AddRow(std::move(row));
  }
  table.Print();
}

int Main(int argc, char** argv) {
  bench::BenchSetup(
      "Figures 1-2 - per-dataset F1 of the five representative models",
      "Li et al., VLDB 2020, Section 5.2.1, Figures 1 and 2", argc, argv);
  core::ExperimentRunner runner;
  PrintGroup(&runner, "Figure 1: datasets with >= 25% positive labels",
             bench::HighRatioSpecs());
  PrintGroup(&runner, "Figure 2: datasets with < 25% positive labels",
             bench::LowRatioSpecs());
  return 0;
}

}  // namespace
}  // namespace semtag

int main(int argc, char** argv) { return semtag::Main(argc, argv); }
