// Reproduces Figure 5: BERT vs the published state-of-the-art on the 15
// datasets with a SOTA reference. SOTA numbers are quoted constants (as in
// the paper); our measured BERT is compared against the *paper's* BERT so
// the win/loss pattern can be checked on the same footing.

#include <cstdio>

#include "bench_util.h"
#include "common/string_util.h"
#include "core/experiment.h"
#include "core/sota.h"

namespace semtag {
namespace {

int Main(int argc, char** argv) {
  bench::BenchSetup("Figure 5 - BERT vs domain state-of-the-art",
                    "Li et al., VLDB 2020, Section 5.3, Figure 5", argc, argv);
  core::ExperimentRunner runner;

  bench::Table table({"Dataset", "Metric", "SOTA (ref)", "paper BERT",
                      "our BERT", "paper verdict", "our verdict"});
  int agreements = 0;
  for (const auto& ref : core::AllSotaReferences()) {
    const auto spec = *data::FindSpec(ref.dataset);
    const auto result = runner.Run(spec, models::ModelKind::kBert);
    double measured = result.f1;
    if (ref.metric == "Accuracy") measured = result.accuracy;
    if (ref.metric == "AUC") measured = result.auc;
    // Our verdict compares the measured BERT directly against the quoted
    // SOTA constant; since our substrate is scaled down, disagreements on
    // datasets where our absolute level differs are expected and noted in
    // EXPERIMENTS.md.
    const bool paper_bert_wins = ref.paper_bert >= ref.value;
    const bool our_bert_wins = measured >= ref.value;
    agreements += (paper_bert_wins == our_bert_wins);
    table.AddRow({ref.dataset, ref.metric,
                  StrFormat("%.2f%s", ref.value,
                            ref.reconstructed ? " (reconstructed)" : ""),
                  bench::Fmt(ref.paper_bert), bench::Fmt(measured),
                  paper_bert_wins ? "BERT >= SOTA" : "SOTA wins",
                  our_bert_wins ? "BERT >= SOTA" : "SOTA wins"});
  }
  table.Print();
  std::printf(
      "Verdict agreement: %d/15. The paper's takeaway: BERT is comparable "
      "to or better than SOTA everywhere except SENT, FUNNY*, BOOK.\n",
      agreements);
  return 0;
}

}  // namespace
}  // namespace semtag

int main(int argc, char** argv) { return semtag::Main(argc, argv); }
