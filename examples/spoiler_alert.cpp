// Spoiler alerts over dirty labels (the paper's Section 2.5 application +
// its Large-L lesson): book-review sentences whose labels come from
// reviewer-supplied alerts, i.e. many true spoilers are labeled negative.
// Shows why threshold calibration matters and why the study recommends
// simple models for large dirty imbalanced data.
//
//   ./build/examples/spoiler_alert

#include <cstdio>

#include "core/pipeline.h"
#include "data/sampling.h"
#include "data/specs.h"
#include "eval/calibration.h"
#include "eval/metrics.h"
#include "models/factory.h"

int main() {
  using namespace semtag;

  // The BOOK stand-in, moderately sized for this demo: 3.2% observed
  // spoilers, ~10% of the "negatives" are unlabeled spoilers, and much of
  // the signal lives in book-specific character names.
  const data::DatasetSpec spec = *data::FindSpec("BOOK");
  data::Dataset reviews = data::BuildDatasetPool(spec, 12000);
  Rng rng(11);
  reviews.Shuffle(&rng);
  auto [train, test] = reviews.Split(0.8);
  std::printf("train %zu / test %zu sentences, observed spoiler ratio "
              "%.1f%% (dirty labels)\n\n",
              train.size(), test.size(), 100 * train.PositiveRatio());

  auto model = models::CreateModel(models::ModelKind::kLr);
  if (!model->Train(train).ok()) return 1;
  const auto scores = model->ScoreAll(test.Texts());
  const auto labels = test.Labels();

  // Naive argmax tagging collapses under extreme imbalance...
  const double argmax_f1 = eval::F1Score(
      labels, eval::ThresholdScores(scores, model->DecisionThreshold()));
  // ...calibrating the threshold for max F1 rescues it (Figure 7).
  const auto calibration = eval::CalibrateMaxF1(labels, scores);
  std::printf("LR argmax F1 %.3f  ->  calibrated F1 %.3f at threshold "
              "%.3f\n",
              argmax_f1, calibration.best_f1, calibration.best_threshold);

  // Against the *true* labels, the same tagger looks much better: the F1
  // ceiling was the dirty labels, not the model (Section 6.2.3).
  std::vector<int> true_labels;
  for (const auto& e : test.examples()) true_labels.push_back(e.true_label);
  const auto vs_truth = eval::CalibrateMaxF1(true_labels, scores);
  std::printf("same scores vs noise-free labels: max F1 %.3f "
              "(the gap is the label dirt)\n\n",
              vs_truth.best_f1);

  // Production setup: SemanticTagger with calibration on, flagging
  // sentences for a spoiler warning.
  core::TaggerOptions options;
  options.auto_select_model = false;
  options.model = models::ModelKind::kLr;
  options.calibrate_threshold = true;
  auto tagger = core::SemanticTagger::Train(train, options);
  if (!tagger.ok()) return 1;
  int flagged = 0;
  for (const auto& e : test.examples()) flagged += (*tagger)->Tag(e.text);
  std::printf("spoiler warnings on the test stream: %d of %zu sentences "
              "(validation F1 %.2f)\n",
              flagged, test.size(), (*tagger)->validation().f1);
  std::printf("\nPer the study: before buying GPU time here, fix the "
              "labels - every model is capped by the dirt, and a "
              "calibrated simple model already sits at that cap.\n");
  return 0;
}
