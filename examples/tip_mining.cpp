// Tip mining (the paper's Section 2.1 application): tag tip-conveying
// sentences in a stream of reviews, compare a simple and a deep tagger on
// the same data, and show the precision/recall trade-off of each.
//
//   ./build/examples/tip_mining

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/string_util.h"
#include "core/experiment.h"
#include "core/pipeline.h"
#include "data/specs.h"
#include "eval/metrics.h"

int main() {
  using namespace semtag;

  // The HOTEL stand-in: hotel-review sentences, 5.4% of which give a tip.
  const data::DatasetSpec spec = *data::FindSpec("HOTEL");
  data::Dataset reviews = data::BuildDataset(spec);
  Rng rng(7);
  reviews.Shuffle(&rng);
  auto [labeled, incoming] = reviews.Split(0.8);
  std::printf("labeled: %zu sentences (%.1f%% tips); incoming stream: %zu\n\n",
              labeled.size(), 100 * labeled.PositiveRatio(),
              incoming.size());

  // Train one tagger per family. Tips are rare, so calibrate thresholds
  // on validation data (the appendix technique for imbalanced tags).
  struct Candidate {
    const char* label;
    models::ModelKind kind;
  };
  const Candidate candidates[] = {
      {"simple (SVM)", models::ModelKind::kSvm},
      {"deep (BERT)", models::ModelKind::kBert},
  };
  for (const auto& candidate : candidates) {
    core::TaggerOptions options;
    options.auto_select_model = false;
    options.model = candidate.kind;
    options.calibrate_threshold = true;
    auto tagger = core::SemanticTagger::Train(labeled, options);
    if (!tagger.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", candidate.label,
                   tagger.status().ToString().c_str());
      continue;
    }
    // Tag the incoming stream and score against its (held-out) labels.
    std::vector<int> predictions;
    predictions.reserve(incoming.size());
    for (const auto& e : incoming.examples()) {
      predictions.push_back((*tagger)->Tag(e.text) ? 1 : 0);
    }
    const auto confusion =
        eval::ComputeConfusion(incoming.Labels(), predictions);
    std::printf("%-13s  tips flagged %lld / %lld actual   precision %.2f  "
                "recall %.2f  F1 %.2f   (trained in %s)\n",
                candidate.label, confusion.tp + confusion.fp,
                confusion.tp + confusion.fn, confusion.Precision(),
                confusion.Recall(), confusion.F1(),
                semtag::HumanSeconds((*tagger)->validation().train_seconds)
                    .c_str());

    // Show the top-scored tips, the product surface of Section 2.1.
    std::vector<std::pair<double, const data::Example*>> scored;
    for (const auto& e : incoming.examples()) {
      scored.emplace_back((*tagger)->Score(e.text), &e);
    }
    std::sort(scored.begin(), scored.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    std::printf("  top tips:\n");
    for (int i = 0; i < 3 && i < static_cast<int>(scored.size()); ++i) {
      std::string text = scored[static_cast<size_t>(i)].second->text;
      if (text.size() > 70) text = text.substr(0, 67) + "...";
      std::printf("   %d. [label=%d] %s\n", i + 1,
                  scored[static_cast<size_t>(i)].second->label,
                  text.c_str());
    }
    std::printf("\n");
  }
  std::printf("Per the study: on a dataset this small, the deep tagger "
              "buys real F1; at millions of reviews the simple one "
              "catches up at a fraction of the cost.\n");
  return 0;
}
