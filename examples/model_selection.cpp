// Model selection with the Advisor: profile a dataset, get the study's
// recommendation (deep vs simple) with an expected-F1 band, and render the
// Figure 11 reference heat map the advice interpolates.
//
//   ./build/examples/model_selection

#include <cstdio>

#include "core/advisor.h"
#include "data/specs.h"

namespace {

void Advise(const char* label, semtag::core::AdviceRequest request) {
  using namespace semtag;
  const core::Advice advice = core::RecommendModel(request);
  std::printf("--- %s\n", label);
  std::printf("    records %lld, ratio %.2f, labels %s%s\n",
              static_cast<long long>(request.profile.num_records),
              request.profile.positive_ratio,
              request.profile.labels_clean ? "clean" : "dirty",
              request.need_fast_training ? ", fast training required" : "");
  std::printf("    recommended: %s (alternative: %s)\n",
              models::ModelKindName(advice.recommended),
              models::ModelKindName(advice.alternative));
  std::printf("    expected F1: %.2f - %.2f (nearest reference datasets:",
              advice.expected_f1_low, advice.expected_f1_high);
  for (const auto& n : advice.neighbors) std::printf(" %s", n.c_str());
  std::printf(")\n    rationale: %s\n\n", advice.rationale.c_str());
}

}  // namespace

int main() {
  using namespace semtag;

  // Scenario 1: profile a real dataset you have in memory.
  {
    const data::Dataset dataset =
        data::BuildDataset(*data::FindSpec("HOTEL"));
    core::AdviceRequest request;
    request.profile = core::ProfileDataset(dataset);
    // Cleanliness is declared, not measured: these labels came from
    // annotators, so they are clean.
    request.profile.labels_clean = true;
    Advise("a small imbalanced review dataset (HOTEL-like)", request);
  }

  // Scenario 2-4: describe datasets by their characteristics only.
  {
    core::AdviceRequest request;
    request.profile.num_records = 5000000;
    request.profile.positive_ratio = 0.03;
    request.profile.labels_clean = false;
    Advise("millions of rule-labeled records, 3% positive (FUNNY-like)",
           request);

    request.profile.num_records = 2000000;
    request.profile.positive_ratio = 0.5;
    request.profile.labels_clean = true;
    request.need_fast_training = true;
    Advise("large clean balanced corpus, must retrain nightly on CPU",
           request);

    request.profile.num_records = 3000;
    request.profile.positive_ratio = 0.4;
    request.need_fast_training = false;
    Advise("a few thousand annotated sentences (typical new task)",
           request);
  }

  // The reference heat map behind the advice (paper Figure 11 values).
  std::printf("Reference heat map (paper values):\n%s",
              core::RenderHeatMap(core::PaperHeatMap(), /*color=*/true)
                  .c_str());
  return 0;
}
