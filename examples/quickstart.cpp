// Quickstart: train a semantic tagger on a labeled dataset and tag new
// sentences.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/pipeline.h"
#include "data/specs.h"

int main() {
  using namespace semtag;

  // 1. Get a labeled dataset: (text, label) records where label 1 means
  //    "this text conveys the tag". Here we use the bundled synthetic
  //    stand-in for the SUGG suggestion-mining dataset; in your
  //    application, fill a data::Dataset from your own records.
  const data::DatasetSpec spec = *data::FindSpec("SUGG");
  const data::Dataset labeled = data::BuildDataset(spec);
  std::printf("dataset: %zu records, %.1f%% positive\n", labeled.size(),
              100.0 * labeled.PositiveRatio());

  // 2. Train. With auto_select_model the Advisor picks the model family
  //    from your dataset's characteristics (size, ratio, cleanliness),
  //    exactly as the study's Section 6.3 prescribes.
  core::TaggerOptions options;
  options.auto_select_model = true;
  options.labels_clean = true;
  auto tagger = core::SemanticTagger::Train(labeled, options);
  if (!tagger.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 tagger.status().ToString().c_str());
    return 1;
  }

  // 3. Inspect what was chosen and how well it validates.
  std::printf("model: %s\n",
              models::ModelKindName((*tagger)->model_kind()));
  std::printf("why:   %s\n", (*tagger)->advice().rationale.c_str());
  std::printf("validation F1 %.3f  precision %.3f  recall %.3f "
              "(train %.2fs)\n",
              (*tagger)->validation().f1, (*tagger)->validation().precision,
              (*tagger)->validation().recall,
              (*tagger)->validation().train_seconds);

  // 4. Tag new text.
  const char* sentences[] = {
      "grab an octopus card to store money and save time queuing",
      "the weather was cold on our second day",
  };
  for (const char* sentence : sentences) {
    std::printf("[%s] score %.3f  \"%s\"\n",
                (*tagger)->Tag(sentence) ? "TAG " : "skip",
                (*tagger)->Score(sentence), sentence);
  }
  return 0;
}
