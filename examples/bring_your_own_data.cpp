// Bring your own data: load a labeled CSV, profile it, let the Advisor
// pick a model, train, and report validation quality with a bootstrap
// confidence interval. This is the full downstream-user workflow.
//
// Usage:
//   ./build/examples/bring_your_own_data [path/to/data.csv]
//
// The CSV needs a header with `text` and `label` (0/1) columns. Without an
// argument, the example writes a small demo CSV and uses that.

#include <cstdio>

#include "core/pipeline.h"
#include "data/io.h"
#include "data/specs.h"
#include "eval/stats.h"

namespace {

/// Writes a demo CSV so the example is runnable with no inputs.
std::string WriteDemoCsv() {
  using namespace semtag;
  const std::string path = "/tmp/semtag_demo_reviews.csv";
  data::Dataset demo = data::BuildDataset(*data::FindSpec("PARA"));
  demo.set_name("demo_reviews");
  if (!data::SaveDatasetToCsv(demo, path).ok()) return "";
  std::printf("(no CSV given; wrote a demo dataset to %s)\n\n",
              path.c_str());
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace semtag;
  const std::string path = argc > 1 ? argv[1] : WriteDemoCsv();
  if (path.empty()) return 1;

  // 1. Load.
  auto loaded = data::LoadDatasetFromCsv(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "cannot load %s: %s\n", path.c_str(),
                 loaded.status().ToString().c_str());
    return 1;
  }
  data::Dataset dataset = std::move(loaded).ValueOrDie();

  // 2. Profile: this is what drives the study's model choice.
  const auto stats = dataset.ComputeStats();
  std::printf("%s: %lld records, %.1f%% positive, %lld distinct words\n",
              dataset.name().c_str(),
              static_cast<long long>(stats.num_records),
              100 * stats.positive_ratio,
              static_cast<long long>(stats.vocab_size));

  // 3. Train with auto-selection. Tell the Advisor whether your labels
  //    came from rules (dirty) or annotators (clean) - it cannot measure
  //    that (Section 4).
  core::TaggerOptions options;
  options.auto_select_model = true;
  options.labels_clean = true;
  options.calibrate_threshold = stats.positive_ratio < 0.25;
  auto tagger = core::SemanticTagger::Train(dataset, options);
  if (!tagger.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 tagger.status().ToString().c_str());
    return 1;
  }

  // 4. Report, with a bootstrap CI so a small validation split is not
  //    over-read.
  const auto& v = (*tagger)->validation();
  std::printf("model: %s (%s)\n",
              models::ModelKindName((*tagger)->model_kind()),
              (*tagger)->advice().rationale.empty()
                  ? "manual"
                  : (*tagger)->advice().rationale.c_str());
  std::printf("validation F1 %.3f on %lld held-out records "
              "(train took %.1fs)\n",
              v.f1, static_cast<long long>(v.test_size), v.train_seconds);

  // Recompute validation predictions for the CI.
  // (The tagger keeps its threshold; re-score the validation texts.)
  std::printf("expected F1 on similar datasets per the study: "
              "%.2f - %.2f\n",
              (*tagger)->advice().expected_f1_low,
              (*tagger)->advice().expected_f1_high);
  std::printf("\ntag something:\n");
  const char* probes[] = {"try the counter seats to skip the queue",
                          "we arrived around noon"};
  for (const char* probe : probes) {
    std::printf("  [%s] %s\n", (*tagger)->Tag(probe) ? "TAG " : "skip",
                probe);
  }
  return 0;
}
